"""Tests for deterministic fault injection and runtime recovery.

Covers the PR's acceptance criteria: fault plans are deterministic and
validated; a crashed core's work is reclaimed and re-executed exactly
once; transient crashes revive their worker; recovery is observable in
fault stats and trace events; and — property-tested — a run with faults
fully off is bit-identical (metrics, records, RNG states) to one without
the fault machinery installed at all.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import SCHEDULER_NAMES, make_scheduler
from repro.errors import ConfigurationError, TaskRetryExhausted
from repro.faults import CoreCrash, FaultInjector, FaultPlan, FaultScenario, StragglerWindow
from repro.graph.generators import random_layered_dag
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.machine.speed import SpeedModel
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment
from repro.sweep import RunSpec, SweepRunner
from repro.trace import (
    FullTracer,
    QueueReclaimEvent,
    TaskRetryEvent,
    WorkerLostEvent,
    WorkerRecoveredEvent,
)

KERNELS = [
    FixedWorkKernel("small", work=2e-4, parallel_fraction=0.5),
    FixedWorkKernel("big", work=2e-3, parallel_fraction=0.95,
                    memory_intensity=0.4),
]

#: Short lease so detection (and therefore the whole test) stays fast.
FAST_CONFIG = RuntimeConfig(lease_timeout=1e-3, retry_backoff=1e-5)


def _run(scheduler="dam-c", seed=0, layers=6, width=4, plan=None,
         config=FAST_CONFIG, tracer=None):
    """One TX2 run, optionally under a fault plan."""
    graph = random_layered_dag(KERNELS, layers, width, seed=seed)
    env = Environment()
    machine = jetson_tx2()
    speed = SpeedModel(env, machine)
    if plan is not None:
        FaultScenario(plan).install(env, speed, machine)
    runtime = SimulatedRuntime(
        env, machine, graph, make_scheduler(scheduler),
        config=config, speed=speed, seed=seed, tracer=tracer,
    )
    return runtime, runtime.run(), graph.total_tasks


def _fingerprint(runtime, result):
    """Everything observable about a run: records, steals, RNG states."""
    records = tuple(
        (r.task_id, r.type_name, r.place, r.ready_time, r.dequeue_time,
         r.exec_start, r.exec_end, r.observed, r.stolen)
        for r in result.collector.records
    )
    rng_draws = tuple(
        float(rng.random()) for rng in runtime._steal_rngs
    ) + (float(runtime._noise_rng.random()), float(runtime._wake_rng.random()))
    return (
        result.makespan,
        result.tasks_completed,
        records,
        dict(result.collector.core_busy),
        result.collector.steals,
        rng_draws,
    )


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreCrash(core=-1, at=1.0)
        with pytest.raises(ConfigurationError):
            CoreCrash(core=0, at=0.0)  # workers start at 0
        with pytest.raises(ConfigurationError):
            CoreCrash(core=0, at=1.0, duration=0.0)
        with pytest.raises(ConfigurationError):
            StragglerWindow(cores=(), at=1.0, duration=1.0, slowdown=0.5)
        with pytest.raises(ConfigurationError):
            StragglerWindow(cores=(0,), at=1.0, duration=1.0, slowdown=0.0)
        with pytest.raises(ConfigurationError):
            StragglerWindow(cores=(0,), at=1.0, duration=1.0, slowdown=1.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultPlan(crashes=(CoreCrash(0, at=1.0, duration=2.0),),
                      stragglers=(StragglerWindow((0,), at=2.0, duration=1.0,
                                                  slowdown=0.5),))
        # A permanent crash occupies [at, inf): anything later collides.
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultPlan(crashes=(CoreCrash(0, at=1.0),
                               CoreCrash(0, at=5.0)))

    def test_disjoint_windows_accepted(self):
        FaultPlan(
            crashes=(CoreCrash(0, at=1.0, duration=1.0),),
            stragglers=(StragglerWindow((0,), at=2.5, duration=1.0,
                                        slowdown=0.5),),
        )

    def test_kills_every_core_rejected(self):
        plan = FaultPlan(crashes=(CoreCrash(0, at=1.0), CoreCrash(1, at=1.5)))
        with pytest.raises(ConfigurationError, match="every core"):
            plan.validate_for(2)
        plan.validate_for(3)  # one survivor is fine

    def test_out_of_range_core_rejected(self):
        plan = FaultPlan(crashes=(CoreCrash(9, at=1.0),))
        with pytest.raises(ConfigurationError, match="outside"):
            plan.validate_for(6)

    def test_params_round_trip(self):
        plan = FaultPlan(
            crashes=(CoreCrash(1, at=0.5), CoreCrash(2, at=1.0, duration=0.2)),
            stragglers=(StragglerWindow((3, 4), at=0.1, duration=0.3,
                                        slowdown=0.4),),
        )
        assert FaultPlan.from_params(plan.to_params()) == plan

    def test_random_is_deterministic(self):
        a = FaultPlan.random(seed=7, num_cores=6, horizon=1.0,
                             crashes=2, stragglers=2)
        b = FaultPlan.random(seed=7, num_cores=6, horizon=1.0,
                             crashes=2, stragglers=2)
        assert a == b
        assert a != FaultPlan.random(seed=8, num_cores=6, horizon=1.0,
                                     crashes=2, stragglers=2)

    def test_random_leaves_a_survivor(self):
        for seed in range(10):
            plan = FaultPlan.random(seed=seed, num_cores=2, horizon=1.0,
                                    crashes=5, stragglers=0)
            assert plan.max_concurrent_crashes() < 2


class TestCrashRecovery:
    def test_permanent_crash_completes_exactly_once(self):
        _, clean, total = _run(seed=1)
        plan = FaultPlan(crashes=(CoreCrash(1, at=0.3 * clean.makespan),))
        runtime, result, _ = _run(seed=1, plan=plan)
        assert result.tasks_completed == total
        # Exactly-once commit: every task recorded once, none duplicated.
        ids = [r.task_id for r in result.collector.records]
        assert len(ids) == total and len(set(ids)) == total
        stats = result.extra["fault_stats"]
        assert stats["workers_lost"] == 1
        assert stats["workers_recovered"] == 0
        assert stats["tasks_recovered"] >= 1

    def test_no_placement_on_dead_core_after_detection(self):
        _, clean, _ = _run(seed=2)
        crash_at = 0.3 * clean.makespan
        plan = FaultPlan(crashes=(CoreCrash(1, at=crash_at),))
        _, result, _ = _run(seed=2, plan=plan)
        detected = crash_at + FAST_CONFIG.lease_timeout
        for r in result.collector.records:
            if r.exec_start >= detected:
                members = range(r.place.leader, r.place.leader + r.place.width)
                assert 1 not in members, (
                    f"task {r.task_id} started on dead core 1 at "
                    f"{r.exec_start} (detection at {detected})"
                )

    def test_transient_crash_revives_worker(self):
        _, clean, total = _run(seed=3)
        plan = FaultPlan(crashes=(
            CoreCrash(1, at=0.2 * clean.makespan,
                      duration=0.4 * clean.makespan),
        ))
        _, result, _ = _run(seed=3, plan=plan)
        assert result.tasks_completed == total
        stats = result.extra["fault_stats"]
        assert stats["workers_lost"] == 1
        assert stats["workers_recovered"] == 1

    def test_straggler_slows_without_recovery(self):
        _, clean, total = _run(seed=4)
        plan = FaultPlan(stragglers=(
            StragglerWindow((0, 1), at=0.1 * clean.makespan,
                            duration=0.5 * clean.makespan, slowdown=0.25),
        ))
        _, result, _ = _run(seed=4, plan=plan)
        assert result.tasks_completed == total
        stats = result.extra["fault_stats"]
        assert stats["workers_lost"] == 0
        assert stats["tasks_retried"] == 0
        assert result.makespan > clean.makespan

    def test_recovery_events_traced(self):
        _, clean, _ = _run(seed=1)
        plan = FaultPlan(crashes=(
            CoreCrash(1, at=0.3 * clean.makespan,
                      duration=0.3 * clean.makespan),
        ))
        tracer = FullTracer()
        _, result, _ = _run(seed=1, plan=plan, tracer=tracer)
        events = tracer.events()
        lost = [e for e in events if isinstance(e, WorkerLostEvent)]
        assert len(lost) == 1 and lost[0].core == 1
        assert any(isinstance(e, QueueReclaimEvent) for e in events)
        recovered = [e for e in events if isinstance(e, WorkerRecoveredEvent)]
        assert len(recovered) == 1 and recovered[0].down_for > 0
        stats = result.extra["fault_stats"]
        retries = [e for e in events if isinstance(e, TaskRetryEvent)]
        assert len(retries) == stats["tasks_retried"]

    def test_retry_budget_exhaustion_raises(self):
        _, clean, _ = _run(seed=1)
        config = RuntimeConfig(lease_timeout=1e-3, max_task_retries=0)
        plan = FaultPlan(crashes=(CoreCrash(1, at=0.3 * clean.makespan),))
        with pytest.raises(TaskRetryExhausted):
            _run(seed=1, plan=plan, config=config)

    def test_detection_latency_equals_lease(self):
        _, clean, _ = _run(seed=5)
        plan = FaultPlan(crashes=(CoreCrash(1, at=0.3 * clean.makespan),))
        _, result, _ = _run(seed=5, plan=plan)
        stats = result.extra["fault_stats"]
        if stats["tasks_recovered"]:
            # In-flight tasks are only re-dispatched once the lease
            # expires, so their recovery latency is at least the lease.
            assert stats["recovery_latency_mean"] >= FAST_CONFIG.lease_timeout


class TestFaultScenarioComposition:
    def test_injector_validates_plan_against_machine(self):
        env = Environment()
        machine = symmetric_machine(1, 2)
        speed = SpeedModel(env, machine)
        plan = FaultPlan(crashes=(CoreCrash(5, at=1.0),))
        with pytest.raises(ConfigurationError):
            FaultInjector(env, speed, machine, plan)

    def test_declarative_faults_spec_runs(self):
        spec = RunSpec(
            kind="single",
            params={
                "workload": {"name": "layered", "kernel": "matmul",
                             "parallelism": 3, "total": 60},
                "machine": "jetson_tx2",
                "scheduler": "dam-c",
                "scenario": {"name": "faults",
                             "crashes": [[1, 0.005, None]]},
            },
            metrics=("tasks_completed", "workers_lost", "tasks_recovered"),
        )
        (row,) = SweepRunner(jobs=1, use_cache=False, progress=False).run(
            [spec]
        )
        assert row["tasks_completed"] == 60
        assert row["workers_lost"] == 1

    def test_faults_compose_with_corunner(self):
        spec = RunSpec(
            kind="single",
            params={
                "workload": {"name": "layered", "kernel": "matmul",
                             "parallelism": 3, "total": 60},
                "machine": "jetson_tx2",
                "scheduler": "dam-c",
                "scenario": {
                    "name": "composite",
                    "scenarios": [
                        {"name": "corunner", "cores": [0], "cpu_share": 0.5},
                        {"name": "faults", "crashes": [[1, 0.005, None]]},
                    ],
                },
            },
            metrics=("tasks_completed", "workers_lost"),
        )
        (row,) = SweepRunner(jobs=1, use_cache=False, progress=False).run(
            [spec]
        )
        assert row["tasks_completed"] == 60
        assert row["workers_lost"] == 1


class TestFaultsOffBitIdentity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        scheduler=st.sampled_from(SCHEDULER_NAMES),
        seed=st.integers(min_value=0, max_value=10_000),
        layers=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=4),
    )
    def test_empty_plan_bit_identical_to_no_scenario(
        self, scheduler, seed, layers, width
    ):
        """An installed-but-empty fault scenario arms the recovery
        machinery yet changes nothing: same metrics, same records, same
        post-run RNG states."""
        base_rt, base, _ = _run(scheduler, seed, layers, width, plan=None)
        armed_rt, armed, _ = _run(scheduler, seed, layers, width,
                                  plan=FaultPlan())
        assert _fingerprint(base_rt, base) == _fingerprint(armed_rt, armed)

    def test_empty_plan_adds_zeroed_fault_stats_only(self):
        _, base, _ = _run(seed=6, plan=None)
        _, armed, _ = _run(seed=6, plan=FaultPlan())
        assert "fault_stats" not in base.extra
        stats = armed.extra["fault_stats"]
        assert stats["workers_lost"] == 0
        assert stats["tasks_retried"] == 0


class TestSpeedModelFaultScale:
    def test_fault_scale_zero_stops_core(self):
        env = Environment()
        machine = symmetric_machine(1, 2)
        speed = SpeedModel(env, machine)
        assert speed.core_rate(0) > 0
        speed.set_fault_scale([0], 0.0)
        assert speed.core_rate(0) == 0.0
        assert speed.fault_scale(0) == 0.0
        speed.set_fault_scale([0], 1.0)
        assert speed.core_rate(0) > 0

    def test_fault_scale_validated(self):
        env = Environment()
        speed = SpeedModel(env, symmetric_machine(1, 2))
        with pytest.raises(ConfigurationError):
            speed.set_fault_scale([0], 1.5)
        with pytest.raises(ConfigurationError):
            speed.set_fault_scale([0], -0.1)


class TestPttInvalidation:
    def test_lost_core_pinned_to_inf(self):
        import numpy as np

        from repro.core.ptt import PttStore

        store = PttStore(symmetric_machine(1, 4))
        table = store.table("k")
        store.mark_core_lost(1)
        for place, value in table.entries():
            members = range(place.leader, place.leader + place.width)
            if 1 in members:
                assert value == np.inf
            else:
                assert value != np.inf

    def test_recovery_resets_for_re_exploration(self):
        import numpy as np

        from repro.core.ptt import PttStore

        store = PttStore(symmetric_machine(1, 4))
        table = store.table("k")
        for place, _ in table.entries():
            table.update(place, 1.0)
        store.mark_core_lost(1)
        store.mark_core_recovered(1)
        for place, value in table.entries():
            assert value != np.inf
            members = range(place.leader, place.leader + place.width)
            if 1 in members:
                # Re-explored from scratch: history discarded.
                assert value == 0.0 and table.samples(place) == 0
            else:
                assert value == 1.0

    def test_lazily_created_tables_inherit_loss(self):
        import numpy as np

        from repro.core.ptt import PttStore

        store = PttStore(symmetric_machine(1, 4))
        store.mark_core_lost(2)
        late = store.table("created-after-loss")
        assert any(value == np.inf for _, value in late.entries())
