"""Tests for the seed-robustness harness and the live-corunner Fig. 4."""

import pytest

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.seeds import SeedSweepResult, run_seeds

TINY = ExperimentSettings(scale=0.01)


class TestSeedSweep:
    def test_sweep_runs_and_ranks(self):
        result = run_seeds(TINY, seeds=(0, 1))
        assert set(result.throughput) == {0, 1}
        for seed in (0, 1):
            assert set(result.throughput[seed]) == {"rws", "fa", "dam-c"}
        assert result.worst_ratio() > 1.0
        assert "Seed robustness" in result.report()

    def test_ranking_helpers(self):
        result = SeedSweepResult(throughput={
            0: {"rws": 1.0, "fa": 2.0, "dam-c": 3.0},
            1: {"rws": 1.0, "fa": 2.5, "dam-c": 3.0},
        })
        assert result.ranking(0) == ("rws", "fa", "dam-c")
        assert result.ranking_stable()
        assert result.worst_ratio() == pytest.approx(3.0)

    def test_unstable_ranking_detected(self):
        result = SeedSweepResult(throughput={
            0: {"rws": 1.0, "fa": 2.0, "dam-c": 3.0},
            1: {"rws": 2.5, "fa": 2.0, "dam-c": 3.0},
        })
        assert not result.ranking_stable()


class TestLiveFig4:
    def test_live_corunner_variant_matches_modeled_shape(self):
        kwargs = dict(
            kernels=("matmul",), parallelisms=(2,),
            schedulers=("rws", "dam-c"),
        )
        modeled = run_fig4(TINY, live_corunner=False, **kwargs)
        live = run_fig4(TINY, live_corunner=True, **kwargs)
        for result in (modeled, live):
            data = result.throughput["matmul"]
            assert data["dam-c"][2] > data["rws"][2]
        # The two co-runner implementations agree within a modest margin.
        m = modeled.throughput["matmul"]["dam-c"][2]
        l = live.throughput["matmul"]["dam-c"][2]
        assert l / m == pytest.approx(1.0, abs=0.25)
