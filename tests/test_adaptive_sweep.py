"""Tests of the adaptive sweep executor (replication, CI, dispatch).

Contracts under test:

* ``Welford`` reproduces batch statistics and exact one-sample values.
* Replicate 0 of any cell *is* the cell; derived replicate seeds are
  deterministic and do not move the cost key.
* ``run_adaptive`` with ``min_seeds == max_seeds == 1`` is bit-identical
  to a plain ``run`` once the reserved ``"adaptive"`` key is stripped.
* Dispatch order — whatever the cost model predicts — never changes any
  metric value, only submission order.
"""

import json
import statistics

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import fig4_spec
from repro.sweep import (
    ADAPTIVE_KEY,
    AdaptivePolicy,
    CostModel,
    RunSpec,
    SweepRunner,
    aggregate_replicates,
    replicate_spec,
)
from repro.util.stats import Welford, t_critical

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _specs():
    """A tiny fig4 slice — real runs, small enough for property tests."""
    settings = ExperimentSettings(scale=0.01)
    return [
        fig4_spec(settings, "matmul", 2, sched)
        for sched in ("rws", "fa", "dam-c")
    ]


def _strip(results):
    return [
        {k: v for k, v in row.items() if k != ADAPTIVE_KEY} for row in results
    ]


class TestWelford:
    @given(st.lists(finite, min_size=2, max_size=40))
    def test_matches_batch_statistics(self, values):
        acc = Welford()
        for v in values:
            acc.add(v)
        assert acc.count == len(values)
        assert acc.mean == pytest.approx(statistics.fmean(values), abs=1e-6)
        assert acc.variance == pytest.approx(
            statistics.variance(values), rel=1e-9, abs=1e-6
        )

    def test_single_sample_is_exact(self):
        acc = Welford()
        acc.add(0.1)
        assert acc.mean == 0.1  # bit-for-bit, no arithmetic detour
        assert acc.variance == 0.0
        assert acc.ci_halfwidth() == float("inf")

    def test_zero_variance_converges(self):
        acc = Welford()
        for _ in range(3):
            acc.add(5.0)
        assert acc.ci_halfwidth() == 0.0
        assert acc.relative_ci() == 0.0

    def test_t_critical_reference_values(self):
        assert t_critical(0.95, 9) == pytest.approx(2.2622, abs=1e-3)
        assert t_critical(0.95, 1) == pytest.approx(12.706, abs=1e-2)
        assert t_critical(0.99, 30) == pytest.approx(2.750, abs=1e-3)

    def test_halfwidth_shrinks_with_samples(self):
        small, large = Welford(), Welford()
        values = [1.0, 2.0, 3.0, 1.5, 2.5]
        for v in values:
            small.add(v)
        for v in values * 4:
            large.add(v)
        assert large.ci_halfwidth() < small.ci_halfwidth()


class TestReplicateSpec:
    def test_replicate_zero_is_the_cell(self):
        spec = _specs()[0]
        assert replicate_spec(spec, 0) is spec

    def test_derived_seeds_deterministic_and_distinct(self):
        spec = _specs()[0]
        reps = [replicate_spec(spec, i) for i in range(4)]
        again = [replicate_spec(spec, i) for i in range(4)]
        assert [r.seed for r in reps] == [r.seed for r in again]
        assert len({r.seed for r in reps}) == 4
        assert [r.key() for r in reps] == [r.key() for r in again]

    def test_replicates_share_cost_key_not_cache_key(self):
        spec = _specs()[0]
        rep = replicate_spec(spec, 2)
        assert rep.cost_key() == spec.cost_key()
        assert rep.key() != spec.key()
        assert rep.tags["replicate"] == 2

    def test_negative_replicate_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate_spec(_specs()[0], -1)


class TestAggregation:
    @given(
        st.dictionaries(
            st.sampled_from(["throughput", "makespan", "tasks"]),
            finite,
            min_size=1,
        )
    )
    def test_single_replicate_identity(self, metrics):
        policy = AdaptivePolicy(ci=0.0, min_seeds=1, max_seeds=1)
        out = aggregate_replicates([dict(metrics)], policy)
        assert {k: v for k, v in out.items() if k != ADAPTIVE_KEY} == metrics
        assert out[ADAPTIVE_KEY]["replicates"] == 1

    def test_single_replicate_preserves_int_type(self):
        policy = AdaptivePolicy(ci=0.0, min_seeds=1, max_seeds=1)
        out = aggregate_replicates([{"tasks_completed": 1500}], policy)
        assert out["tasks_completed"] == 1500
        assert isinstance(out["tasks_completed"], int)

    @given(st.lists(finite, min_size=2, max_size=12))
    def test_scalar_mean_over_replicates(self, values):
        policy = AdaptivePolicy(ci=0.0, min_seeds=1, max_seeds=len(values))
        out = aggregate_replicates([{"m": v} for v in values], policy)
        assert out["m"] == pytest.approx(statistics.fmean(values), abs=1e-6)

    def test_non_scalar_keeps_replicate_zero(self):
        policy = AdaptivePolicy(ci=0.5, min_seeds=1, max_seeds=3)
        rows = [
            {"throughput": 10.0, "hist": [1, 2], "name": "a"},
            {"throughput": 12.0, "hist": [3, 4], "name": "b"},
        ]
        out = aggregate_replicates(rows, policy)
        assert out["throughput"] == pytest.approx(11.0)
        assert out["hist"] == [1, 2]
        assert out["name"] == "a"

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(ci=-0.1)
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(min_seeds=0)
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(min_seeds=5, max_seeds=3)
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(confidence=1.0)


class TestCostModel:
    def _spec(self, sched):
        return _specs()[("rws", "fa", "dam-c").index(sched)]

    def test_order_unknown_first_then_longest(self):
        model = CostModel()
        fast, mid, slow = (self._spec(s) for s in ("rws", "fa", "dam-c"))
        for _ in range(3):
            model.observe(fast, 1.0)
            model.observe(slow, 9.0)
        pending = [
            (fast.key(), fast), (slow.key(), slow), (mid.key(), mid)
        ]
        ordered = model.order(pending)
        # mid has a family ("single") estimate, so nothing is unknown;
        # slow's 9 s beats every blended estimate.
        assert ordered[0][0] == slow.key()
        assert {k for k, _ in ordered} == {k for k, _ in pending}

    def test_unknown_kind_leads(self):
        model = CostModel()
        known = self._spec("rws")
        model.observe(known, 2.0)
        unknown = RunSpec(kind="table1", params={}, metrics=("x",))
        ordered = model.order([(known.key(), known), ("u", unknown)])
        assert ordered[0][0] == "u"

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "model.json"
        model = CostModel(path)
        spec = self._spec("rws")
        model.observe(spec, 3.0)
        model.save()
        reloaded = CostModel(path)
        assert reloaded.predict(spec) == pytest.approx(3.0)

    def test_corrupt_model_file_ignored(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{broken")
        model = CostModel(path)
        assert model.predict(self._spec("rws")) is None
        path.write_text(json.dumps([1, 2, 3]))
        assert CostModel(path).predict(self._spec("rws")) is None

    def test_ewma_update_rule_pinned(self):
        # Regression pin of the exact fold: first observation seeds the
        # estimate at (seconds, 1); each later one blends at alpha=0.3.
        model = CostModel()
        spec = self._spec("rws")
        model.observe(spec, 2.0)
        assert model._exact[spec.cost_key()] == (2.0, 1)
        model.observe(spec, 4.0)
        mean, samples = model._exact[spec.cost_key()]
        assert mean == pytest.approx(0.7 * 2.0 + 0.3 * 4.0)
        assert samples == 2

    def test_batch_marginal_trains_batch_key_only(self):
        from repro.core.batched import make_batch_spec
        from repro.sweep.cost import BATCH_KEY_PREFIX

        model = CostModel()
        member = self._spec("dam-c")
        members = [replicate_spec(member, rep) for rep in range(4)]
        pseudo = make_batch_spec(members)

        # A lockstep batch is cheaper per replicate than a scalar run;
        # observing its wall must not drag down the scalar estimate.
        model.observe(member, 10.0)
        model.observe(pseudo, 8.0)  # marginal 2.0 << scalar 10.0
        assert model._exact[member.cost_key()] == (10.0, 1)
        key = BATCH_KEY_PREFIX + member.cost_key()
        assert model._exact[key] == (2.0, 1)
        # Batch pricing uses the batched marginal once it exists...
        assert model.predict(pseudo) == pytest.approx(2.0 * 4)
        # ...and the batched marginal folds by the same pinned EWMA.
        model.observe(pseudo, 4.0)  # marginal 1.0
        mean, samples = model._exact[key]
        assert mean == pytest.approx(0.7 * 2.0 + 0.3 * 1.0)
        assert samples == 2
        # Scalar prediction still reflects only scalar observations.
        assert model.predict(member) == pytest.approx(10.0)

    def test_unseen_batch_prices_at_member_estimate(self):
        from repro.core.batched import make_batch_spec

        model = CostModel()
        member = self._spec("dam-c")
        members = [replicate_spec(member, rep) for rep in range(3)]
        pseudo = make_batch_spec(members)
        assert model.predict(pseudo) is None
        model.observe(member, 6.0)
        # No batch observed yet: the scalar marginal stands in.
        assert model.predict(pseudo) == pytest.approx(6.0 * 3)
        # Batch observations never touch the per-kind family fallback.
        assert model._family["single"] == (6.0, 1)
        model.observe(pseudo, 3.0)
        assert model._family["single"] == (6.0, 1)


class TestAdaptiveEngine:
    @pytest.fixture(scope="class")
    def baseline(self):
        """Plain-sweep results of the tiny slice, computed once."""
        return SweepRunner(jobs=1, use_cache=False, progress=False).run(
            _specs()
        )

    def test_policy_none_is_plain_run(self, baseline):
        runner = SweepRunner(jobs=1, use_cache=False, progress=False)
        assert runner.run_adaptive(_specs(), None) == baseline

    def test_single_seed_adaptive_bit_identical(self, baseline):
        runner = SweepRunner(jobs=1, use_cache=False, progress=False)
        policy = AdaptivePolicy(ci=0.0, min_seeds=1, max_seeds=1)
        out = runner.run_adaptive(_specs(), policy)
        assert _strip(out) == baseline  # exact equality, input order

    @given(ci=st.floats(min_value=0.0, max_value=0.5), seeds=st.integers(1, 3))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_min_equals_max_matches_fixed_replication(self, ci, seeds):
        """With min==max the CI target is irrelevant: every cell runs
        exactly ``seeds`` replicates, whatever ``ci`` says."""
        specs = _specs()[:2]
        policy = AdaptivePolicy(ci=ci, min_seeds=seeds, max_seeds=seeds)
        runner = SweepRunner(jobs=1, use_cache=False, progress=False)
        out = runner.run_adaptive(specs, policy)
        fixed = [
            replicate_spec(spec, rep)
            for spec in specs
            for rep in range(seeds)
        ]
        rows = SweepRunner(jobs=1, use_cache=False, progress=False).run(fixed)
        expected = [
            aggregate_replicates(rows[i * seeds:(i + 1) * seeds], policy)
            for i in range(len(specs))
        ]
        assert _strip(out) == _strip(expected)
        assert all(row[ADAPTIVE_KEY]["replicates"] == seeds for row in out)

    @given(
        costs=st.lists(
            st.floats(min_value=0.001, max_value=100.0), min_size=3, max_size=3
        )
    )
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dispatch_order_never_affects_metrics(self, baseline, costs):
        """Arbitrary cost-model state permutes submission order only."""
        specs = _specs()
        runner = SweepRunner(jobs=1, use_cache=False, progress=False)
        for spec, cost in zip(specs, costs):
            runner.cost_model.observe(spec, cost)
        assert runner.run(specs) == baseline

    def test_dispatch_order_parallel_matches_serial(self, baseline):
        runner = SweepRunner(jobs=3, use_cache=False, progress=False)
        for spec, cost in zip(_specs(), (50.0, 0.1, 7.0)):
            runner.cost_model.observe(spec, cost)
        assert runner.run(_specs()) == baseline

    def test_zero_variance_cell_stops_at_min_seeds(self, tmp_path):
        # scale 0.01 runs are deterministic per seed but vary across
        # seeds; with a generous CI target the loop must stop early.
        specs = _specs()[:1]
        policy = AdaptivePolicy(ci=10.0, min_seeds=2, max_seeds=8)
        runner = SweepRunner(
            jobs=1, cache_dir=tmp_path, use_cache=True, progress=False
        )
        out = runner.run_adaptive(specs, policy)
        assert out[0][ADAPTIVE_KEY]["replicates"] == 2
        assert out[0][ADAPTIVE_KEY]["converged"]
        assert runner.last_stats.seeds_saved == 6
        assert runner.last_stats.seeds_added == 0
        assert runner.last_stats.cells == 1

    def test_adaptive_shares_cache_with_plain_sweeps(self, tmp_path):
        specs = _specs()[:1]
        SweepRunner(
            jobs=1, cache_dir=tmp_path, use_cache=True, progress=False
        ).run(specs)
        runner = SweepRunner(
            jobs=1, cache_dir=tmp_path, use_cache=True, progress=False
        )
        policy = AdaptivePolicy(ci=0.0, min_seeds=1, max_seeds=1)
        runner.run_adaptive(specs, policy)
        # Replicate 0 is the base spec: its plain-sweep entry must hit.
        assert runner.last_stats.hits == 1
        assert runner.last_stats.executed == 0

    def test_manifest_carries_stats_and_replicates(self, tmp_path):
        specs = _specs()[:2]
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / "cache",
            use_cache=True,
            progress=False,
            manifest_dir=tmp_path,
        )
        policy = AdaptivePolicy(ci=0.0, min_seeds=2, max_seeds=2)
        runner.run_adaptive(specs, policy)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        stats = manifest["stats"]
        assert stats["cells"] == 2
        assert stats["executed"] == 4
        assert stats["hit_rate"] == 0.0
        assert len(manifest["runs"]) == 4
        replicates = sorted(
            run["tags"].get("replicate", 0) for run in manifest["runs"]
        )
        assert replicates == [0, 0, 1, 1]

    def test_plain_manifest_carries_stats(self, tmp_path):
        specs = _specs()[:1]
        runner = SweepRunner(
            jobs=1,
            cache_dir=tmp_path / "cache",
            use_cache=True,
            progress=False,
            manifest_dir=tmp_path,
        )
        runner.run(specs)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["stats"]["executed"] == 1
        assert manifest["stats"]["cells"] == 0
