"""Tests for the structured trace event bus (repro.trace).

Covers the PR's acceptance criteria: bit-identity of traced vs untraced
runs, Chrome-trace/JSONL export round-trips, analysis reductions,
sweep-cache bypass for traced specs, and snapshot/tracer agreement.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import SCHEDULER_NAMES, make_scheduler
from repro.errors import ConfigurationError
from repro.graph.generators import random_layered_dag
from repro.interference.dvfs_events import DvfsInterference
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.presets import jetson_tx2
from repro.machine.topology import ExecutionPlace
from repro.metrics.collector import TraceCollector
from repro.metrics.records import TaskRecord
from repro.runtime.executor import SimulatedRuntime
from repro.session import quick_run
from repro.sim.environment import Environment
from repro.sweep import RunSpec, SweepRunner
from repro.trace import (
    DecisionEvent,
    FullTracer,
    NULL_TRACER,
    PttUpdateEvent,
    QueueSampleEvent,
    RingBufferTracer,
    SpeedEvent,
    StealEvent,
    TaskExecEvent,
    WorkerStateEvent,
    decision_quality,
    event_from_dict,
    event_to_dict,
    make_tracer,
    ptt_convergence,
    read_jsonl,
    steal_breakdown,
    summarize,
    to_chrome_trace,
    worker_breakdown,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.validate import DEFAULT_SCHEMA, validate_payload

KERNELS = [
    FixedWorkKernel("small", work=2e-4, parallel_fraction=0.5),
    FixedWorkKernel("big", work=2e-3, parallel_fraction=0.95,
                    memory_intensity=0.4),
]


def _run(scheduler: str, seed: int, layers: int, width: int, tracer=None):
    graph = random_layered_dag(KERNELS, layers, width, seed=seed)
    env = Environment()
    runtime = SimulatedRuntime(
        env, jetson_tx2(), graph, make_scheduler(scheduler),
        seed=seed, tracer=tracer,
    )
    return runtime, runtime.run()


def _fingerprint(runtime, result):
    """Everything observable about a run: records, steals, RNG states."""
    records = tuple(
        (r.task_id, r.type_name, r.place, r.ready_time, r.dequeue_time,
         r.exec_start, r.exec_end, r.observed, r.stolen)
        for r in result.collector.records
    )
    rng_draws = tuple(
        float(rng.random()) for rng in runtime._steal_rngs
    ) + (float(runtime._noise_rng.random()), float(runtime._wake_rng.random()))
    return (
        result.makespan,
        result.tasks_completed,
        records,
        dict(result.collector.core_busy),
        result.collector.steals,
        result.collector.failed_steal_scans,
        rng_draws,
    )


class TestBitIdentity:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        scheduler=st.sampled_from(SCHEDULER_NAMES),
        seed=st.integers(min_value=0, max_value=10_000),
        layers=st.integers(min_value=1, max_value=6),
        width=st.integers(min_value=1, max_value=5),
    )
    def test_traced_run_bit_identical_to_untraced(
        self, scheduler, seed, layers, width
    ):
        """An enabled tracer changes nothing: same RunResult, same records,
        same post-run RNG states (tracing never consumes randomness)."""
        base_rt, base = _run(scheduler, seed, layers, width, tracer=None)
        traced_rt, traced = _run(
            scheduler, seed, layers, width, tracer=FullTracer()
        )
        assert _fingerprint(base_rt, base) == _fingerprint(traced_rt, traced)
        assert len(traced_rt.tracer.events()) > 0

    def test_null_tracer_records_nothing(self):
        runtime, _ = _run("dam-c", seed=3, layers=4, width=4, tracer=None)
        assert runtime.tracer is NULL_TRACER
        assert len(runtime.tracer) == 0


@pytest.fixture(scope="module")
def fig4_scale_trace():
    """One fig4-scale traced run (DAM-C, P=4, DVFS interference)."""
    tracer = FullTracer()
    wave = PeriodicSquareWave(high_scale=1.0, low_scale=0.3, half_period=0.05)
    result = quick_run(
        scheduler="dam-c", parallelism=4, total_tasks=150,
        scenario=DvfsInterference(cores=(0, 1), wave=wave, until=2.0),
        tracer=tracer,
    )
    return tracer.events(), result


class TestExport:
    def test_jsonl_round_trip_preserves_events(self, fig4_scale_trace, tmp_path):
        events, _ = fig4_scale_trace
        path = write_jsonl(tmp_path / "run.jsonl", events)
        back = read_jsonl(path)
        assert back == list(events)

    def test_chrome_trace_counts_and_order(self, fig4_scale_trace):
        events, _ = fig4_scale_trace
        payload = to_chrome_trace(events, label="test")
        trace = payload["traceEvents"]
        slices = [e for e in trace if e.get("ph") == "X"]
        # One "X" slice per member core of every executed assembly.
        expected = sum(
            len(e.cores) for e in events if isinstance(e, TaskExecEvent)
        )
        assert len(slices) == expected
        # Slices appear in commit order (the event-stream order).
        exec_events = [e for e in events if isinstance(e, TaskExecEvent)]
        slice_ids = [s["args"]["task_id"] for s in slices]
        expanded = [
            e.task_id for e in exec_events for _ in e.cores
        ]
        assert slice_ids == expanded
        # Per-core thread-name metadata covers every participating core.
        named = {
            e["tid"] for e in trace
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert named == {c for e in exec_events for c in e.cores}
        # DVFS transitions surfaced as freq counter samples.
        assert any(
            e.get("ph") == "C" and e["name"].startswith("freq_scale c")
            for e in trace
        )
        # PTT predictions surfaced as a counter track (DAM-C trains one).
        assert any(
            e.get("ph") == "C" and e["name"].startswith("ptt ")
            for e in trace
        )

    def test_chrome_trace_validates_against_schema(
        self, fig4_scale_trace, tmp_path
    ):
        events, _ = fig4_scale_trace
        path = write_chrome_trace(tmp_path / "run.chrome.json", events)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        with open(DEFAULT_SCHEMA, "r", encoding="utf-8") as fh:
            schema = json.load(fh)
        assert validate_payload(payload, schema) == []

    def test_schema_rejects_malformed_payload(self):
        with open(DEFAULT_SCHEMA, "r", encoding="utf-8") as fh:
            schema = json.load(fh)
        bad = {"traceEvents": [{"ph": "X", "pid": 0}]}
        assert validate_payload(bad, schema)

    def test_event_dict_round_trip(self):
        events = [
            WorkerStateEvent(t=0.1, core=2, state="steal"),
            QueueSampleEvent(t=0.2, core=1, wsq=3, aq=0, op="push"),
            StealEvent(t=0.3, thief=1, victim=0, task_id=7, outcome="hit"),
            DecisionEvent(
                t=0.4, task_id=7, type_name="k", core=1, leader=0, width=2,
                kind="steal", priority="high", exploration=True,
                predictions=((0, 1, 0.5), (0, 2, 0.3)),
                oracle_leader=0, oracle_width=2,
            ),
            PttUpdateEvent(t=0.5, type_name="k", leader=0, width=2,
                           observed=0.2, old=0.3, new=0.28, samples=4),
            SpeedEvent(t=0.6, kind="freq_scale", cores=(0, 1), domain="",
                       value=0.25),
            TaskExecEvent(t=0.7, task_id=7, type_name="k", leader=0, width=2,
                          cores=(0, 1), exec_start=0.4, exec_end=0.7,
                          priority="high", stolen=True),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event


class TestAnalysis:
    def test_worker_breakdown_covers_cores_and_is_nonnegative(
        self, fig4_scale_trace
    ):
        events, result = fig4_scale_trace
        breakdown = worker_breakdown(events)
        assert breakdown  # at least the cores that did anything
        for acc in breakdown.values():
            assert set(acc) == {"exec", "poll", "steal", "idle"}
            assert all(v >= -1e-12 for v in acc.values())
            assert sum(acc.values()) <= result.makespan + 1e-9

    def test_steal_breakdown_matches_collector(self, fig4_scale_trace):
        events, result = fig4_scale_trace
        steals = steal_breakdown(events)
        assert sum(s["hit"] for s in steals.values()) == result.collector.steals
        assert (
            sum(s["miss"] for s in steals.values())
            == result.collector.failed_steal_scans
        )

    def test_decision_quality_bounds(self, fig4_scale_trace):
        events, _ = fig4_scale_trace
        quality = decision_quality(events)
        n_decisions = sum(1 for e in events if isinstance(e, DecisionEvent))
        assert quality["decisions"] == float(n_decisions) > 0
        assert 0.0 <= quality["oracle_match"] <= 1.0
        assert 0.0 < quality["exploration_fraction"] <= 1.0

    def test_ptt_convergence_reports_da_tables(self, fig4_scale_trace):
        events, _ = fig4_scale_trace
        convergence = ptt_convergence(events, machine=jetson_tx2())
        assert convergence  # DAM-C trains a PTT for the matmul type
        for entry in convergence.values():
            assert "all" in entry
            assert any(key.startswith("cluster:") for key in entry)

    def test_summarize_is_human_readable(self, fig4_scale_trace):
        events, _ = fig4_scale_trace
        text = summarize(events, machine=jetson_tx2())
        assert "worker time breakdown" in text
        assert "decisions:" in text
        assert "ptt[" in text


class TestSnapshotAgreement:
    def test_snapshot_reports_worker_states_and_assemblies(self):
        graph = random_layered_dag(KERNELS, 4, 4, seed=5)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("dam-c"), seed=5,
            tracer=FullTracer(),
        )
        runtime.start()
        seen_exec = False
        while not runtime.finished:
            env.step()
            snap = runtime.snapshot()
            states = snap["worker_states"]
            assert all(
                s in ("exec", "poll", "steal", "idle") for s in states
            )
            for state, aid, tid in zip(
                states, snap["current_assembly"], snap["current_task"]
            ):
                # A worker inside an assembly reports both ids; the ids
                # are always paired.
                assert (aid is None) == (tid is None)
                if aid is not None:
                    seen_exec = True
            # Snapshot state equals the state the tracer last emitted.
            last: dict = {}
            for event in runtime.tracer.events():
                if isinstance(event, WorkerStateEvent):
                    last[event.core] = event.state
            for core, state in last.items():
                assert states[core] == state
        assert seen_exec


class TestCollectorOccupancy:
    def _record(self, start=1.0, end=3.0):
        return TaskRecord(
            task_id=1, type_name="k", priority=0,
            place=ExecutionPlace(0, 2), ready_time=0.0, dequeue_time=0.5,
            exec_start=start, exec_end=end, observed=end - start,
            stolen=False, metadata={},
        )

    def test_members_charged_their_occupancy_window(self):
        collector = TraceCollector(4)
        # Core 1 arrived at t=0.5 and waited for core 0 (joined at t=1.0,
        # when execution started); both are occupied until t=3.0.
        collector.record_task(
            self._record(), (0, 1), joined_at={0: 1.0, 1: 0.5}
        )
        assert collector.core_busy[0] == pytest.approx(2.0)
        assert collector.core_busy[1] == pytest.approx(2.5)
        assert collector.core_busy[2] == 0.0

    def test_without_joined_at_charges_duration(self):
        collector = TraceCollector(2)
        collector.record_task(self._record(), (0, 1))
        assert collector.core_busy[0] == pytest.approx(2.0)
        assert collector.core_busy[1] == pytest.approx(2.0)


class TestSweepTraceIntegration:
    def _spec(self, tmp_path=None, label="run"):
        params = {
            "workload": {"name": "layered", "kernel": "matmul",
                         "parallelism": 2, "total": 30},
            "machine": "jetson_tx2",
            "scheduler": "dam-c",
        }
        if tmp_path is not None:
            params["trace"] = {"out_dir": str(tmp_path), "label": label}
        return RunSpec(kind="single", params=params, seed=1,
                       metrics=("throughput",))

    def test_traced_spec_bypasses_cache(self, tmp_path):
        runner = SweepRunner(
            jobs=1, cache_dir=tmp_path / "cache", use_cache=True,
            progress=False,
        )
        spec = self._spec(tmp_path / "out")
        runner.run([spec])
        assert runner.last_stats.executed == 1
        # No cache entry was written; a second run executes again.
        assert not (tmp_path / "cache" / f"{spec.key()}.json").exists()
        runner.run([spec])
        assert runner.last_stats.hits == 0
        assert runner.last_stats.executed == 1
        assert (tmp_path / "out" / "run.chrome.json").exists()
        assert (tmp_path / "out" / "run.jsonl").exists()

    def test_untraced_spec_still_cached(self, tmp_path):
        runner = SweepRunner(
            jobs=1, cache_dir=tmp_path / "cache", use_cache=True,
            progress=False,
        )
        spec = self._spec()
        first = runner.run([spec])
        second = runner.run([spec])
        assert first == second
        assert runner.last_stats.hits == 1

    def test_trace_config_alters_cache_key(self, tmp_path):
        assert self._spec().key() != self._spec(tmp_path).key()

    def test_traced_metrics_match_untraced(self, tmp_path):
        runner = SweepRunner(jobs=1, use_cache=False, progress=False)
        traced = runner.run([self._spec(tmp_path)])[0]
        plain = runner.run([self._spec()])[0]
        assert traced["throughput"] == plain["throughput"]
        assert traced["trace_events"] > 0

    def test_manifest_written(self, tmp_path):
        runner = SweepRunner(
            jobs=1, use_cache=False, progress=False,
            manifest_dir=tmp_path / "out",
        )
        runner.run([self._spec(tmp_path / "out", label="a")])
        with open(tmp_path / "out" / "manifest.json") as fh:
            manifest = json.load(fh)
        assert len(manifest["runs"]) == 1
        run = manifest["runs"][0]
        assert run["cached"] is False
        assert run["wall_time"] > 0
        assert run["kind"] == "single"
        assert "version" in run

    def test_heat_cluster_rejects_tracing(self, tmp_path):
        from repro.sweep.registry import execute_spec

        spec = RunSpec(
            kind="heat_cluster",
            params={"nodes": 2, "iterations": 2, "scheduler": "dam-c",
                    "trace": {"out_dir": str(tmp_path)}},
            seed=0,
        )
        with pytest.raises(ConfigurationError, match="does not support"):
            execute_spec(spec)


class TestTracers:
    def test_make_tracer_variants(self):
        assert isinstance(make_tracer("full"), FullTracer)
        ring = make_tracer("ring", limit=3)
        assert isinstance(ring, RingBufferTracer)
        for i in range(5):
            ring.emit(WorkerStateEvent(t=float(i), core=0, state="idle"))
        assert len(ring) == 3
        assert ring.events()[0].t == 2.0
        with pytest.raises(ConfigurationError):
            make_tracer("bogus")

    def test_ring_buffer_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBufferTracer(0)
