"""Equivalence properties behind the profile-guided fast paths.

Every hot-path rewrite in this PR claims *bit-identical* behavior to the
code it replaced.  The tests here state those claims as properties:

* the vectorized placement searches pick the same place as the scalar
  first-wins argmin for arbitrary PTT states (including inf-pinned lost
  cores and zero unexplored entries),
* DAG template instantiation reproduces direct generation structurally,
* the seq-keyed ``EventQueue.cancel`` hits exactly the schedule it
  targeted (the id-reuse regression), and pooled events recycle without
  aliasing,
* the buffered single-victim steal draw is stream-identical to the
  ``choice`` call it replaced.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    _argmin_place,
    global_search_cost,
    global_search_performance,
    local_search_cost,
    width_one_places,
)
from repro.core.ptt import PerformanceTraceTable
from repro.graph.generators import (
    chain_dag,
    diamond_dag,
    fork_join_dag,
    layered_synthetic_dag,
    random_layered_dag,
)
from repro.graph.task import Priority, TaskState
from repro.graph.templates import clear_template_cache, template_cache_stats
from repro.kernels.fixed import FixedWorkKernel
from repro.kernels.matmul import MatMulKernel
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.sim.environment import Environment, Timeout
from repro.sim.events import Event, EventQueue

TX2 = jetson_tx2()
SYM = symmetric_machine(sockets=2, cores_per_socket=3)

FAST = settings(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _load_table(machine, values, lost_cores):
    """A PTT with the given per-slot values, some cores marked lost."""
    table = PerformanceTraceTable(machine)
    for slot, value in enumerate(values):
        if value > 0:
            table.update_slot(slot, value)
    for core in lost_cores:
        table.mark_core_lost(core)
    return table


def _backlog_fn(loads):
    return lambda core: loads[core]


class TestVectorizedSearchEquivalence:
    """Vectorized search ≡ scalar ``_argmin_place`` on random PTT states."""

    @FAST
    @given(data=st.data(), machine=st.sampled_from([TX2, SYM]))
    def test_global_cost_matches_scalar(self, data, machine):
        n_places = len(machine.places)
        values = data.draw(st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=n_places, max_size=n_places,
        ))
        lost = data.draw(st.lists(
            st.integers(min_value=0, max_value=machine.num_cores - 1),
            max_size=2, unique=True,
        ))
        use_backlog = data.draw(st.booleans())
        loads = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=machine.num_cores, max_size=machine.num_cores,
        )) if use_backlog else None
        table = _load_table(machine, values, lost)
        backlog = _backlog_fn(loads) if loads is not None else None
        # places=list(...) defeats the predict_all fast path -> scalar.
        scalar = global_search_cost(
            table, machine, places=list(machine.places), backlog=backlog
        )
        vector = global_search_cost(table, machine, backlog=backlog)
        assert vector == scalar

    @FAST
    @given(data=st.data(), machine=st.sampled_from([TX2, SYM]))
    def test_global_performance_matches_scalar(self, data, machine):
        n_places = len(machine.places)
        values = data.draw(st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=n_places, max_size=n_places,
        ))
        lost = data.draw(st.lists(
            st.integers(min_value=0, max_value=machine.num_cores - 1),
            max_size=2, unique=True,
        ))
        loads = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=machine.num_cores, max_size=machine.num_cores,
        ))
        table = _load_table(machine, values, lost)
        backlog = _backlog_fn(loads)
        scalar = global_search_performance(
            table, machine, places=list(machine.places), backlog=backlog
        )
        vector = global_search_performance(table, machine, backlog=backlog)
        assert vector == scalar

    @FAST
    @given(data=st.data(), machine=st.sampled_from([TX2, SYM]))
    def test_width_one_subset_matches_scalar(self, data, machine):
        """The DA scheduler's width-1 pool takes the identity fast path."""
        n_places = len(machine.places)
        values = data.draw(st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=n_places, max_size=n_places,
        ))
        loads = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=machine.num_cores, max_size=machine.num_cores,
        ))
        table = _load_table(machine, values, [])
        backlog = _backlog_fn(loads)
        pool = width_one_places(machine)
        assert pool is machine._width_one_places  # fast path engages
        fast = global_search_performance(
            table, machine, places=pool, backlog=backlog
        )
        slow = _argmin_place(list(pool), table.predict, backlog)
        assert fast == slow

    @FAST
    @given(data=st.data(), machine=st.sampled_from([TX2, SYM]))
    def test_local_search_matches_scalar(self, data, machine):
        n_places = len(machine.places)
        values = data.draw(st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=n_places, max_size=n_places,
        ))
        core = data.draw(st.integers(0, machine.num_cores - 1))
        table = _load_table(machine, values, [])
        fast = local_search_cost(table, machine, core)
        candidates = [
            machine.local_place_for(core, w) for w in machine.widths_at(core)
        ]
        slow = _argmin_place(candidates, lambda p: table.predict(p) * p.width)
        assert fast == slow

    def test_lost_core_inf_never_wins(self):
        """Inf-pinned places lose to any explored finite place."""
        table = PerformanceTraceTable(TX2)
        for slot in range(len(TX2.places)):
            table.update_slot(slot, 1.0)
        table.mark_core_lost(0)
        place = global_search_cost(table, TX2)
        assert 0 not in TX2.place_cores(place)


def _fingerprint(graph):
    """Full structural identity of a task graph (ids, deps, ready set)."""
    tasks = list(graph.tasks())
    return (
        graph.name,
        tuple(
            (
                t.task_id, t.kernel.name, int(t.priority), t.label,
                tuple(sorted(t.metadata.items())), t._pending_deps,
                t.state.value, tuple(c.task_id for c in t._dependents),
            )
            for t in tasks
        ),
        tuple(t.task_id for t in graph._fresh_ready),
    )


class TestTemplateEquivalence:
    """Template instantiation ≡ direct generation, all families."""

    def _builders(self, seed):
        k = FixedWorkKernel(name="k", work=1.0)
        k2 = FixedWorkKernel(name="k2", work=2.0)
        return [
            lambda: layered_synthetic_dag(k, parallelism=3, total_tasks=12),
            lambda: chain_dag(k, length=7, priority=Priority.HIGH),
            lambda: fork_join_dag(k, fan_out=4, stages=2),
            lambda: diamond_dag(k),
            lambda: random_layered_dag(
                [k, k2], layers=5, max_width=4, seed=seed,
                edge_probability=0.4,
            ),
        ]

    @pytest.mark.parametrize("seed", [0, 1, 42, 1234])
    def test_instantiate_equals_direct(self, seed):
        for build in self._builders(seed):
            clear_template_cache()
            direct = build()          # miss: built directly, then captured
            replay = build()          # hit: instantiated from the template
            stats = template_cache_stats()
            assert stats["misses"] == 1 and stats["hits"] == 1
            assert _fingerprint(replay) == _fingerprint(direct)

    def test_metadata_dicts_are_fresh_per_instance(self):
        clear_template_cache()
        k = FixedWorkKernel(name="k", work=1.0)
        a = layered_synthetic_dag(k, parallelism=2, total_tasks=4)
        b = layered_synthetic_dag(k, parallelism=2, total_tasks=4)
        ta, tb = next(iter(a.tasks())), next(iter(b.tasks()))
        ta.metadata["scribble"] = 1
        assert "scribble" not in tb.metadata

    def test_unhashable_kernel_state_bypasses_cache(self):
        clear_template_cache()
        k = FixedWorkKernel(name="k", work=1.0)
        k.scratch = [1, 2, 3]  # unhashable attribute -> no cache key
        chain_dag(k, length=3)
        stats = template_cache_stats()
        assert stats["bypasses"] >= 1 and stats["size"] == 0

    def test_random_seed_object_not_cached(self):
        clear_template_cache()
        k = FixedWorkKernel(name="k", work=1.0)
        rng = np.random.default_rng(7)
        random_layered_dag([k], layers=3, max_width=3, seed=rng)
        assert template_cache_stats()["size"] == 0

    def test_roots_are_ready_and_drainable(self):
        clear_template_cache()
        k = FixedWorkKernel(name="k", work=1.0)
        fork_join_dag(k, fan_out=3, stages=1)
        replay = fork_join_dag(k, fan_out=3, stages=1)
        roots = replay.drain_ready()
        assert [t.task_id for t in roots] == [0]
        assert all(t.state is TaskState.READY for t in roots)


class TestEventQueueCancelEpoch:
    """``cancel`` keyed by heap seq: the id-reuse regression (satellite)."""

    def test_cancel_after_pop_is_noop(self):
        q = EventQueue()
        env = Environment()
        first = Event(env)
        q.push(1.0, 1, first)
        q.pop()
        # Cancelling the popped event must not poison anything: with the
        # old id()-keyed defunct set, a later event allocated at the same
        # address (or the same object re-pushed) would be dropped.
        q.cancel(first)
        assert len(q) == 0
        q.push(2.0, 1, first)  # re-push the very same object
        assert len(q) == 1
        assert q.pop()[3] is first

    def test_cancel_hits_only_the_targeted_schedule(self):
        q = EventQueue()
        env = Environment()
        event = Event(env)
        q.push(1.0, 1, event)
        q.cancel(event)
        q.push(2.0, 1, event)  # a new schedule of the same object
        assert len(q) == 1
        assert q.pop()[3] is event  # survived the earlier cancellation

    def test_double_cancel_and_len_invariant(self):
        q = EventQueue()
        env = Environment()
        events = [Event(env) for _ in range(4)]
        for i, e in enumerate(events):
            q.push(float(i), 1, e)
        q.cancel(events[1])
        q.cancel(events[1])  # second cancel: no-op, not a double count
        q.cancel(events[3])
        assert len(q) == 2
        assert q.pop()[3] is events[0]
        assert q.pop()[3] is events[2]
        assert len(q) == 0

    def test_pooled_event_reuse_does_not_alias_cancellation(self):
        """A recycled pooled event must not inherit old cancellations."""
        env = Environment()
        fired = []
        first = env.sleep(1.0, value="a")
        env._queue.cancel(first)
        env.run(until=2.0)  # drops the defunct entry, recycles `first`
        again = env.sleep(1.0, value="b")
        assert again is first  # the pool really did hand the object back
        again.callbacks.append(lambda e: fired.append(e.value))
        env.run(until=5.0)
        assert fired == ["b"]


class TestEventPooling:
    def test_sleep_schedules_like_timeout(self):
        """sleep() and Timeout interleave identically on the heap."""
        env1, env2 = Environment(), Environment()
        order1, order2 = [], []
        for delay, tag in [(2.0, "x"), (1.0, "y"), (1.0, "z")]:
            env1.timeout(delay, tag).callbacks.append(
                lambda e: order1.append(e.value)
            )
            env2.sleep(delay, tag).callbacks.append(
                lambda e: order2.append(e.value)
            )
        env1.run()
        env2.run()
        assert order1 == order2 == ["y", "z", "x"]

    def test_user_timeouts_are_never_pooled(self):
        env = Environment()
        t = env.timeout(1.0)
        assert not t._pooled
        env.run()
        assert t.processed  # still inspectable after processing
        assert t not in env._queue._free

    def test_free_list_is_bounded(self):
        env = Environment()

        def chain():
            for _ in range(600):
                yield env.sleep(0.001)

        env.process(chain())
        env.run()
        assert len(env._queue._free) <= EventQueue.FREE_LIST_MAX


class TestStealDrawEquivalence:
    """integers(0, n-1) singles == choice == batched draws, same stream."""

    @pytest.mark.parametrize("n", [2, 4, 6, 19])
    @pytest.mark.parametrize("seed", [0, 42])
    def test_choice_integers_and_batch_agree(self, n, seed):
        r_choice = np.random.default_rng(seed)
        r_single = np.random.default_rng(seed)
        r_batch = np.random.default_rng(seed)
        singles = [int(r_single.integers(0, n)) for _ in range(128)]
        choices = [
            int(r_choice.choice(n, size=1, replace=False)[0])
            for _ in range(128)
        ]
        batched = [int(v) for v in r_batch.integers(0, n, size=64)]
        batched += [int(v) for v in r_batch.integers(0, n, size=64)]
        assert singles == choices == batched


class TestTickDriverEquivalence:
    """The steal-backoff tick driver vs the plain generator path.

    Under the default single-try steal configuration the executor drives
    backoff waits, spin collapse and idle wakes through pooled callback
    events; with tracing enabled it takes the original sleep-and-resume
    generator path.  Tracing is observational (it never consumes
    randomness or schedules events), so the two paths must produce the
    same schedule to the bit — including the bulk-counted failed steal
    scans the collapse fast-forwards.
    """

    @staticmethod
    def _fingerprint(result):
        return (
            result.makespan,
            result.tasks_completed,
            result.collector.steals,
            result.collector.failed_steal_scans,
            sorted(
                (r.task_id, r.type_name, r.place, r.ready_time,
                 r.dequeue_time, r.exec_start, r.exec_end, r.observed,
                 r.stolen)
                for r in result.collector.records
            ),
            sorted(result.collector.core_busy.items()),
        )

    @pytest.mark.parametrize("scheduler", ["rws", "fa", "fam-c", "da", "dam-c"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_driver_matches_generator_path(self, scheduler, seed):
        from repro.session import run_graph
        from repro.trace import FullTracer

        def run(tracer=None):
            graph = layered_synthetic_dag(MatMulKernel(), 4, 60)
            return run_graph(graph, TX2, scheduler, seed=seed, tracer=tracer)

        driven = self._fingerprint(run())
        generated = self._fingerprint(run(tracer=FullTracer()))
        assert driven == generated
