"""Tests of batched replicate execution (``repro.core.batched``).

Contracts under test:

* A :class:`BatchedPttStore` row view behaves bit-identically to a
  scalar :class:`PerformanceTraceTable` over arbitrary update sequences,
  including lost-core pinning, and ``update_slot_runs`` equals a loop of
  per-run scalar updates.
* ``execute_batch`` returns metrics bit-identical (``==``, not approx)
  to scalar ``execute_spec`` per replicate, for random cells and widths.
* ``run_adaptive`` with ``batch_runs="auto"`` returns exactly the
  results of ``batch_runs="off"``, with per-replicate cache entries and
  per-replicate ``seeds_added`` accounting.
* The lockstep co-advance driver (:mod:`repro.core.lockstep`), with
  decision and fold parking forced on, is bit-identical to the legacy
  scalar-in-turn batch path across schedulers, run counts 1..8 and
  divergent-seed steal storms, and a replicate failing mid-drive never
  aborts its batchmates.
* Fallback triggers: fault scenarios, seeded-RNG (unkeyable) kernels,
  traced runs and non-``single`` executors are rejected by
  :func:`can_batch` (with a specific :func:`batch_ineligible_reason`)
  and take the scalar path end to end.
* The manifest's structured ``batched`` entry carries width + driver
  mode for batched replicates and the fallback reason for scalar ones,
  and the CLI/settings knob validates its inputs.
"""

import json
import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    BatchedPttStore,
    BatchedRates,
    BatchedSpeedModel,
    batch_group_key,
    batch_ineligible_reason,
    can_batch,
    execute_batch,
    make_batch_spec,
    parse_batch_spec,
    run_batch_spec,
)
from repro.core.ptt import PerformanceTraceTable, PttStore
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import fig4_spec
from repro.machine.presets import jetson_tx2
from repro.sim.environment import Environment
from repro.sweep import AdaptivePolicy, RunSpec, SweepRunner, replicate_spec
from repro.sweep.engine import _parse_batch_runs
from repro.sweep.registry import execute_spec

FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
TINY = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _cell(scheduler="dam-c", kernel="matmul", parallelism=2, seed=0):
    return fig4_spec(
        ExperimentSettings(scale=0.01, seed=seed), kernel, parallelism,
        scheduler,
    )


def _replicates(spec, n):
    return [replicate_spec(spec, rep) for rep in range(n)]


@contextmanager
def _env(**overrides):
    """Temporarily set (value) or unset (None) environment variables."""
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


#: Force every lockstep feature on, so decision parking and fold parking
#: are exercised even on the small test machine and narrow batches that
#: the auto gates would otherwise leave scalar.
LOCKSTEP_ON = dict(
    REPRO_LOCKSTEP="1",
    REPRO_LOCKSTEP_DECISIONS="on",
    REPRO_LOCKSTEP_FOLDS="on",
)


# ----------------------------------------------------------------------
# stacked PTT
# ----------------------------------------------------------------------

update_seq = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=16),  # slot index (mod n_slots)
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    max_size=30,
)


class TestBatchedPtt:
    @given(
        runs=st.integers(min_value=1, max_value=4),
        seqs=st.lists(update_seq, min_size=1, max_size=4),
        lost=st.lists(st.integers(min_value=0, max_value=5), max_size=2),
    )
    @FAST
    def test_row_view_matches_scalar_table(self, runs, seqs, lost):
        machine = jetson_tx2()
        n_slots = len(machine.places)
        store = BatchedPttStore(machine, runs)
        scalars = [
            PerformanceTraceTable(machine, 1, 5, label="matmul")
            for _ in range(runs)
        ]
        views = [
            store.store_for(run).table("matmul") for run in range(runs)
        ]
        for run in range(runs):
            seq = seqs[run % len(seqs)]
            for slot, observed in seq:
                slot %= n_slots
                scalars[run].update_slot(slot, observed)
                views[run].update_slot(slot, observed)
            for core in lost:
                scalars[run].mark_core_lost(core)
                views[run].mark_core_lost(core)
        for run in range(runs):
            np.testing.assert_array_equal(
                np.asarray(scalars[run].predict_all()),
                np.asarray(views[run].predict_all()),
            )
            assert scalars[run]._values_list == views[run]._values_list
            # The stacked matrix sees exactly what the row views wrote.
            np.testing.assert_array_equal(
                store.predict_all_runs("matmul")[run],
                np.asarray(views[run].predict_all()),
            )

    @given(
        runs=st.integers(min_value=1, max_value=5),
        steps=st.integers(min_value=0, max_value=12),
        data=st.data(),
    )
    @FAST
    def test_update_slot_runs_equals_scalar_loop(self, runs, steps, data):
        machine = jetson_tx2()
        n_slots = len(machine.places)
        batched = BatchedPttStore(machine, runs)
        looped = BatchedPttStore(machine, runs)
        loop_tables = [
            looped.store_for(run).table("k") for run in range(runs)
        ]
        for _ in range(steps):
            slots = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_slots - 1),
                    min_size=runs, max_size=runs,
                )
            )
            obs = data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                    min_size=runs, max_size=runs,
                )
            )
            batched.update_slot_runs("k", slots, obs)
            for run in range(runs):
                loop_tables[run].update_slot(slots[run], obs[run])
        np.testing.assert_array_equal(
            batched.predict_all_runs("k"), looped.predict_all_runs("k")
        )
        np.testing.assert_array_equal(
            batched.samples_all_runs("k"), looped.samples_all_runs("k")
        )
        np.testing.assert_array_equal(batched.stack(), looped.stack())

    def test_store_for_validates_run(self):
        store = BatchedPttStore(jetson_tx2(), 2)
        with pytest.raises(ConfigurationError):
            store.store_for(2)
        with pytest.raises(ConfigurationError):
            store.store_for(-1)

    def test_update_slot_runs_validates_shapes(self):
        store = BatchedPttStore(jetson_tx2(), 3)
        with pytest.raises(ConfigurationError):
            store.update_slot_runs("k", [0, 1], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            store.update_slot_runs("k", [0, 1, 2], [1.0, -2.0, 3.0])

    def test_empty_stack_shape(self):
        machine = jetson_tx2()
        store = BatchedPttStore(machine, 3)
        assert store.stack().shape == (3, 0, len(machine.places))
        assert store.kinds() == ()


class TestBatchedRates:
    def test_speed_model_mirrors_transitions_into_row(self):
        machine = jetson_tx2()
        rates = BatchedRates(machine, 3)
        env = Environment()
        speed = BatchedSpeedModel(env, machine, rates, run=1)
        speed.set_freq_scale([0, 1], 0.25)
        speed.set_cpu_share([2], 0.5)
        speed.set_fault_scale([3], 0.0)
        assert rates.freq_scale[1, 0] == 0.25
        assert rates.freq_scale[1, 1] == 0.25
        assert rates.cpu_share[1, 2] == 0.5
        assert rates.fault_scale[1, 3] == 0.0
        # Other rows stay pristine.
        assert np.all(rates.freq_scale[0] == 1.0)
        assert np.all(rates.freq_scale[2] == 1.0)
        # The mirrored row agrees with the scalar model's own view.
        for core in range(machine.num_cores):
            assert rates.effective()[1, core] == pytest.approx(
                speed.core_rate(core)
            )

    def test_run_bounds_checked(self):
        machine = jetson_tx2()
        rates = BatchedRates(machine, 2)
        with pytest.raises(ConfigurationError):
            BatchedSpeedModel(Environment(), machine, rates, run=2)


# ----------------------------------------------------------------------
# eligibility and pseudo-specs
# ----------------------------------------------------------------------

class TestEligibility:
    def test_plain_cell_is_batchable(self):
        assert can_batch(_cell())

    def test_fault_scenario_is_not(self):
        spec = _cell()
        params = dict(spec.params)
        params["scenario"] = {"name": "faults", "rate": 0.1}
        assert not can_batch(RunSpec(kind="single", params=params))
        # ... also nested inside a composite.
        params["scenario"] = {
            "name": "composite",
            "scenarios": [
                {"name": "tx2_corunner", "kernel": "matmul"},
                {"name": "faults", "rate": 0.1},
            ],
        }
        assert not can_batch(RunSpec(kind="single", params=params))

    def test_traced_and_foreign_kinds_are_not(self):
        spec = _cell()
        params = dict(spec.params)
        params["trace"] = {"out_dir": "x", "label": "y"}
        assert not can_batch(RunSpec(kind="single", params=params))
        assert not can_batch(RunSpec(kind="heat_cluster", params={}))

    def test_unkeyable_kernel_falls_back(self, monkeypatch):
        import repro.core.batched as batched_mod

        monkeypatch.setattr(
            "repro.core.batched.can_batch", batched_mod.can_batch
        )
        monkeypatch.setattr(
            "repro.graph.templates.kernel_cache_key", lambda kernel: None
        )
        assert not can_batch(_cell())

    def test_batch_group_key_ignores_seed_only(self):
        a, b = _cell(seed=0), _cell(seed=99)
        assert batch_group_key(a) == batch_group_key(b)
        other = _cell(scheduler="rws")
        assert batch_group_key(a) != batch_group_key(other)

    def test_make_parse_roundtrip(self):
        members = _replicates(_cell(), 3)
        pseudo = make_batch_spec(members)
        assert pseudo.tags["batch"] == 3
        # Tags are bookkeeping and deliberately dropped; everything that
        # defines the runs' outcomes round-trips exactly.
        assert [m.identity() for m in parse_batch_spec(pseudo)] == [
            m.identity() for m in members
        ]

    def test_make_batch_spec_rejects_mixed_cells(self):
        with pytest.raises(ConfigurationError):
            make_batch_spec([_cell(), _cell(scheduler="rws")])
        with pytest.raises(ConfigurationError):
            make_batch_spec([_cell()])


# ----------------------------------------------------------------------
# bit-identity of batched execution
# ----------------------------------------------------------------------

class TestExecuteBatch:
    @given(
        scheduler=st.sampled_from(["rws", "fa", "fam-c", "da", "dam-c"]),
        parallelism=st.integers(min_value=2, max_value=4),
        width=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @TINY
    def test_bit_identical_to_scalar_per_replicate(
        self, scheduler, parallelism, width, seed
    ):
        cell = _cell(scheduler=scheduler, parallelism=parallelism, seed=seed)
        members = _replicates(cell, width)
        scalar = [execute_spec(spec) for spec in members]
        batched = execute_batch(members)
        assert [p["ok"] for p in batched] == scalar

    def test_run_batch_spec_executor_roundtrip(self):
        members = _replicates(_cell(), 3)
        payload = execute_spec(make_batch_spec(members))
        assert [p["ok"] for p in payload["replicates"]] == [
            execute_spec(spec) for spec in members
        ]

    def test_broken_replicate_does_not_abort_batchmates(self, monkeypatch):
        members = _replicates(_cell(), 3)
        from repro.sweep import registry

        real = registry.build_workload
        calls = {"n": 0}

        def flaky(workload):
            calls["n"] += 1
            if calls["n"] == 2:  # second replicate only
                raise RuntimeError("boom")
            return real(workload)

        monkeypatch.setattr("repro.sweep.registry.build_workload", flaky)
        payloads = execute_batch(members)
        assert "ok" in payloads[0] and "ok" in payloads[2]
        assert payloads[1]["err"]["type"] == "RuntimeError"

    def test_rejects_unbatchable_and_mixed(self):
        spec = _cell()
        params = dict(spec.params)
        params["scenario"] = {"name": "faults", "rate": 0.1}
        bad = RunSpec(kind="single", params=params)
        with pytest.raises(ConfigurationError):
            execute_batch([bad, bad])
        with pytest.raises(ConfigurationError):
            execute_batch([_cell(), _cell(scheduler="rws")])
        assert execute_batch([]) == []


# ----------------------------------------------------------------------
# lockstep co-advance driver
# ----------------------------------------------------------------------

class TestLockstep:
    """The lockstep driver (:mod:`repro.core.lockstep`).

    Bit-identity is the non-negotiable contract: with decision and fold
    parking forced on, co-advanced runs must produce payloads equal
    (``==``, not approx) to the legacy scalar-in-turn path for every
    scheduler, run count and seed.
    """

    @given(
        scheduler=st.sampled_from(
            ["rws", "fa", "fam-c", "da", "dam-c", "dam-p"]
        ),
        width=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @TINY
    def test_lockstep_bit_identical_to_scalar(self, scheduler, width, seed):
        members = _replicates(_cell(scheduler=scheduler, seed=seed), width)
        with _env(REPRO_LOCKSTEP="0"):
            scalar = execute_batch(members)
        with _env(**LOCKSTEP_ON):
            lock = execute_batch(members)
        assert lock == scalar

    def test_steal_storm_with_divergent_seeds(self):
        # High parallelism on the small machine forces heavy stealing;
        # the six seeds diverge at their first steal-victim draw, so the
        # runs park at thoroughly different simulated times.
        members = _replicates(
            _cell(scheduler="da", parallelism=8, seed=7), 6
        )
        with _env(REPRO_LOCKSTEP="0"):
            scalar = execute_batch(members)
        with _env(**LOCKSTEP_ON):
            lock = execute_batch(members)
        assert lock == scalar
        assert all("ok" in p for p in lock)

    def test_mid_drive_failure_never_aborts_batchmates(self, monkeypatch):
        members = _replicates(_cell(scheduler="dam-c"), 4)
        with _env(REPRO_LOCKSTEP="0"):
            scalar = execute_batch(members)
        from repro.core.policies import registry as policy_registry

        real = policy_registry.make_scheduler
        built = {"n": 0}

        def flaky(name, **kwargs):
            policy = real(name, **kwargs)
            built["n"] += 1
            if built["n"] == 2:  # the second replicate's policy
                orig = policy.choose_place
                calls = {"n": 0}

                def boom(task, core):
                    calls["n"] += 1
                    if calls["n"] > 5:  # deep into the drive phase
                        raise RuntimeError("replicate 1 exploded")
                    return orig(task, core)

                policy.choose_place = boom
            return policy

        monkeypatch.setattr(
            "repro.core.policies.registry.make_scheduler", flaky
        )
        with _env(**LOCKSTEP_ON):
            lock = execute_batch(members)
        assert lock[1]["err"]["type"] == "RuntimeError"
        assert [lock[i] for i in (0, 2, 3)] == [
            scalar[i] for i in (0, 2, 3)
        ]

    def test_run_batch_spec_reports_mode(self):
        pseudo = make_batch_spec(_replicates(_cell(), 3))
        with _env(**LOCKSTEP_ON):
            on = run_batch_spec(pseudo)
        with _env(REPRO_LOCKSTEP="0"):
            off = run_batch_spec(pseudo)
        assert on["mode"] == "lockstep"
        assert off["mode"] == "scalar"
        assert on["replicates"] == off["replicates"]

    def test_knobs(self):
        from repro.core import lockstep

        assert lockstep.lockstep_enabled()  # default on
        with _env(REPRO_LOCKSTEP="0"):
            assert not lockstep.lockstep_enabled()
        with _env(REPRO_LOCKSTEP_DECISIONS="off"):
            assert lockstep._tri_state("REPRO_LOCKSTEP_DECISIONS") is False
        with _env(REPRO_LOCKSTEP_DECISIONS="on"):
            assert lockstep._tri_state("REPRO_LOCKSTEP_DECISIONS") is True
        with _env(REPRO_LOCKSTEP_DECISIONS="auto"):
            assert lockstep._tri_state("REPRO_LOCKSTEP_DECISIONS") is None
        with _env(REPRO_LOCKSTEP_DECISIONS=None):  # unset: auto
            assert lockstep._tri_state("REPRO_LOCKSTEP_DECISIONS") is None

    def test_ineligible_reasons_are_specific(self):
        assert batch_ineligible_reason(_cell()) is None
        spec = _cell()
        params = dict(spec.params)
        params["trace"] = {"out_dir": "x", "label": "y"}
        assert batch_ineligible_reason(
            RunSpec(kind="single", params=params)
        ) == "traced"
        params = dict(spec.params)
        params["scenario"] = {"name": "faults", "rate": 0.1}
        assert batch_ineligible_reason(
            RunSpec(kind="single", params=params)
        ) == "faults"
        assert batch_ineligible_reason(
            RunSpec(kind="heat_cluster", params={})
        ) == "executor:heat_cluster"


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------

def _adaptive(specs, tmp_path=None, **kwargs):
    policy = AdaptivePolicy(ci=0.02, min_seeds=3, max_seeds=5)
    runner = SweepRunner(jobs=1, use_cache=False, **kwargs)
    return runner.run_adaptive(specs, policy), runner.last_stats


class TestEngineIntegration:
    def test_auto_equals_off_bit_identical(self):
        specs = [_cell(scheduler=s) for s in ("rws", "fa", "dam-c")]
        off, _ = _adaptive(specs, batch_runs="off")
        on, stats = _adaptive(specs, batch_runs="auto")
        assert on == off
        assert stats.batches == 3
        assert stats.batched_runs == 9  # min_seeds x 3 cells, round 1
        assert "batched: 9 replicates in 3 batches" in stats.summary()

    def test_width_cap_chunks_batches(self):
        specs = [_cell(scheduler="dam-c")]
        off, _ = _adaptive(specs, batch_runs="off")
        on, stats = _adaptive(specs, batch_runs="2")
        assert on == off
        # 3 initial replicates under a width-2 cap: one batch of 2 plus
        # one scalar leftover.
        assert stats.batches == 1
        assert stats.batched_runs == 2

    def test_fault_cells_take_scalar_path(self):
        spec = _cell()
        params = dict(spec.params)
        params["scenario"] = {
            "name": "faults", "mtbf": 5.0, "mttr": 1.0, "cores": [0],
        }
        faulty = RunSpec(
            kind="single", params=params, seed=0, metrics=("throughput",)
        )
        results, stats = _adaptive([faulty], batch_runs="auto")
        assert stats.batches == 0 and stats.batched_runs == 0
        assert results and "throughput" in results[0]

    def test_seeds_added_counts_replicates_not_batches(self):
        specs = [_cell(scheduler=s) for s in ("rws", "dam-c")]
        _, off_stats = _adaptive(specs, batch_runs="off")
        _, on_stats = _adaptive(specs, batch_runs="auto")
        assert on_stats.seeds_added == off_stats.seeds_added
        assert on_stats.executed == off_stats.executed
        assert on_stats.as_dict()["batched_runs"] == on_stats.batched_runs

    def test_cache_entries_are_per_replicate(self, tmp_path):
        specs = [_cell(scheduler="dam-c")]
        policy = AdaptivePolicy(ci=0.02, min_seeds=3, max_seeds=5)
        warm = SweepRunner(
            jobs=1, cache_dir=tmp_path, use_cache=True, batch_runs="auto"
        )
        first = warm.run_adaptive(specs, policy)
        replay = SweepRunner(
            jobs=1, cache_dir=tmp_path, use_cache=True, batch_runs="off"
        )
        second = replay.run_adaptive(specs, policy)
        assert second == first
        assert replay.last_stats.executed == 0
        assert replay.last_stats.hits == replay.last_stats.unique

    def test_manifest_marks_batched_runs(self, tmp_path):
        specs = [_cell(scheduler="dam-c")]
        policy = AdaptivePolicy(ci=0.02, min_seeds=3, max_seeds=5)
        runner = SweepRunner(
            jobs=1, use_cache=False, manifest_dir=tmp_path,
            batch_runs="auto",
        )
        runner.run_adaptive(specs, policy)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        batched = [
            r for r in manifest["runs"] if r["batched"]["batched"]
        ]
        assert batched
        for r in batched:
            assert r["batched"]["width"] == 3
            assert r["batched"]["mode"] in ("lockstep", "scalar")
            assert r["batch"] == 3  # legacy width field kept
        assert manifest["stats"]["batches"] >= 1
        assert manifest["stats"]["lockstep_batches"] >= 1
        scalars = [
            r for r in manifest["runs"] if not r["batched"]["batched"]
        ]
        for r in scalars:
            assert "batch" not in r
            assert r["batched"]["reason"]

    def test_manifest_records_ineligibility_reason(self, tmp_path):
        spec = _cell()
        params = dict(spec.params)
        params["scenario"] = {
            "name": "faults", "mtbf": 5.0, "mttr": 1.0, "cores": [0],
        }
        faulty = RunSpec(
            kind="single", params=params, seed=0, metrics=("throughput",)
        )
        policy = AdaptivePolicy(ci=0.02, min_seeds=2, max_seeds=2)
        runner = SweepRunner(
            jobs=1, use_cache=False, manifest_dir=tmp_path,
            batch_runs="auto",
        )
        runner.run_adaptive([faulty], policy)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["runs"]
        for r in manifest["runs"]:
            assert r["batched"] == {"batched": False, "reason": "faults"}

    def test_batch_harness_failure_falls_back_to_scalar(self, monkeypatch):
        specs = [_cell(scheduler="dam-c")]
        off, _ = _adaptive(specs, batch_runs="off")

        def broken(spec):
            raise RuntimeError("batch harness down")

        monkeypatch.setattr("repro.core.batched.run_batch_spec", broken)
        on, stats = _adaptive(specs, batch_runs="auto")
        assert on == off
        assert stats.batched_runs == 0
        assert stats.failures == 0


class TestKnobParsing:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, None), ("off", None), ("OFF", None), (1, None), ("1", None),
            ("auto", 0), (" AUTO ", 0), (2, 2), ("8", 8),
        ],
    )
    def test_parse(self, value, expected):
        assert _parse_batch_runs(value) == expected

    @pytest.mark.parametrize("value", ["nope", 0, -3, 2.5, True])
    def test_parse_rejects(self, value):
        with pytest.raises(ConfigurationError):
            _parse_batch_runs(value)

    def test_settings_validation(self):
        assert ExperimentSettings(batch_runs="auto").batch_runs == "auto"
        assert ExperimentSettings(batch_runs="4").batch_runs == "4"
        with pytest.raises(ConfigurationError):
            ExperimentSettings(batch_runs="sometimes")
        with pytest.raises(ConfigurationError):
            ExperimentSettings(batch_runs="0")

    def test_cli_flag_reaches_settings(self, monkeypatch):
        from repro.experiments import runner as cli

        captured = {}

        class _Result:
            def report(self):
                return "ok"

        def fake_harness(settings):
            captured["batch_runs"] = settings.batch_runs
            return _Result()

        monkeypatch.setitem(cli._HARNESSES, "fig4", fake_harness)
        assert cli.main(["fig4", "--batch-runs", "off", "--no-cache"]) == 0
        assert captured["batch_runs"] == "off"
