"""Tests for the coordinator/worker cluster backend (repro.cluster).

Thread-backed inproc workers share this process, so chaos executors
registered here are visible to them; the TCP smoke test spawns real
``python -m repro.cluster.worker`` subprocesses and therefore sticks to
spec kinds from the built-in registry.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.cluster import comm
from repro.cluster.chaos import run_chaos_proof
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import start_worker_thread
from repro.errors import ConfigurationError
from repro.sweep import ERROR_KEY, RunSpec, SweepRunner, is_error_result, pop_stats
from repro.sweep.registry import executor
from repro.telemetry import Telemetry


@executor("cluster_echo")
def _echo(spec):
    return {"value": float(spec.params["value"])}


@executor("cluster_mark")
def _mark(spec):
    """Appends one line per execution — observable exactly-once evidence."""
    with open(spec.params["counter"], "a") as fh:
        fh.write(f"{spec.params['value']}\n")
    return {"value": float(spec.params["value"])}


@executor("cluster_sleep")
def _sleep(spec):
    time.sleep(spec.params.get("sleep", 0.2))
    return {"value": float(spec.params.get("value", 0))}


def _executions(counter) -> int:
    try:
        with open(counter) as fh:
            return len(fh.readlines())
    except OSError:
        return 0


def _spec(kind, metrics=("value",), **params):
    return RunSpec(kind=kind, params=params, metrics=metrics)


def _jobs(specs):
    return [(spec.key(), spec, 1) for spec in specs]


def _metric(telemetry, name) -> float:
    return telemetry.registry.get(name).value


class TestComm:
    def test_inproc_roundtrip_value_space(self):
        listener = comm.listen("inproc://t-roundtrip")
        client = comm.connect(listener.address)
        server = listener.accept(timeout=1.0)
        assert server is not None
        client.send({"type": "hello", "tuple": (1, 2)})
        got = server.recv(timeout=1.0)
        # Messages cross in JSON value space even in-process: a tuple
        # arrives as a list, exactly as it would over TCP.
        assert got == {"type": "hello", "tuple": [1, 2]}
        server.send({"ok": True})
        assert client.recv(timeout=1.0) == {"ok": True}
        client.close()
        server.close()
        listener.close()

    def test_inproc_duplicate_address_rejected(self):
        listener = comm.listen("inproc://t-dup")
        try:
            with pytest.raises(comm.AddressInUse):
                comm.listen("inproc://t-dup")
        finally:
            listener.close()
        # Closing releases the name for reuse.
        comm.listen("inproc://t-dup").close()

    def test_recv_timeout_returns_none(self):
        listener = comm.listen("inproc://t-timeout")
        client = comm.connect(listener.address)
        server = listener.accept(timeout=1.0)
        assert server.recv(timeout=0.05) is None
        client.close()
        server.close()
        listener.close()

    def test_closed_peer_raises_after_drain(self):
        listener = comm.listen("inproc://t-closed")
        client = comm.connect(listener.address)
        server = listener.accept(timeout=1.0)
        client.send({"n": 1})
        client.close()
        # The queued message is still delivered before the closed
        # connection surfaces as an error.
        assert server.recv(timeout=1.0) == {"n": 1}
        with pytest.raises(comm.ConnectionClosed):
            for _ in range(100):
                server.recv(timeout=0.05)
        server.close()
        listener.close()

    def test_connect_unknown_inproc_address_fails(self):
        with pytest.raises(comm.ClusterUnavailable):
            comm.connect("inproc://nobody-here", timeout=0.1)

    def test_tcp_roundtrip_on_ephemeral_port(self):
        listener = comm.listen("tcp://127.0.0.1:0")
        assert not listener.address.endswith(":0")  # bound port reported
        client = comm.connect(listener.address, timeout=5.0)
        server = listener.accept(timeout=5.0)
        assert server is not None
        client.send({"type": "ping", "payload": {"deep": [1, 2, 3]}})
        assert server.recv(timeout=5.0) == {
            "type": "ping", "payload": {"deep": [1, 2, 3]}
        }
        server.send({"type": "pong"})
        assert client.recv(timeout=5.0) == {"type": "pong"}
        client.close()
        server.close()
        listener.close()


class TestCoordinator:
    """Direct coordinator/worker tests, no sweep runner involved."""

    def _coordinator(self, name, **kw):
        kw.setdefault("telemetry", Telemetry(enabled=True))
        kw.setdefault("retry_backoff", 0.05)
        return ClusterCoordinator(f"inproc://{name}", **kw)

    def test_basic_lease_execution(self):
        coord = self._coordinator("t-basic")
        workers = [
            start_worker_thread(coord.address, name=f"w{i}", capacity=1)
            for i in range(2)
        ]
        specs = [_spec("cluster_echo", value=v) for v in range(6)]
        try:
            report = coord.execute(_jobs(specs))
        finally:
            coord.close()
            for w in workers:
                w.stop()
        assert len(report.outcomes) == 6
        for spec in specs:
            out = report.outcomes[spec.key()]
            assert out.status == "ok"
            assert out.payload == {"value": float(spec.params["value"])}
        assert report.peak_workers == 2

    def test_parked_sweep_resumes_when_worker_joins(self):
        tele = Telemetry(enabled=True)
        coord = self._coordinator("t-park", telemetry=tele)
        specs = [_spec("cluster_echo", value=v) for v in range(3)]
        box = {}

        def drive():
            box["report"] = coord.execute(_jobs(specs))

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        time.sleep(0.3)  # zero workers: the sweep must park, not die
        assert thread.is_alive()
        assert _metric(tele, "cluster_parked_total") >= 1
        worker = start_worker_thread(coord.address, name="late")
        thread.join(timeout=10.0)
        try:
            assert not thread.is_alive()
            outcomes = box["report"].outcomes
            assert all(o.status == "ok" for o in outcomes.values())
        finally:
            coord.close()
            worker.stop()

    def test_worker_death_reclaims_and_retries(self, tmp_path):
        from repro.cluster.chaos import ChaosEvent, WorkerChaos

        tele = Telemetry(enabled=True)
        coord = self._coordinator(
            "t-death", telemetry=tele, max_attempts=3, liveness_timeout=0.6
        )
        counter = tmp_path / "c"
        specs = [
            _spec("cluster_mark", counter=str(counter), value=v)
            for v in range(6)
        ]
        doomed = start_worker_thread(
            coord.address,
            name="doomed",
            heartbeat_interval=0.1,
            chaos=WorkerChaos(
                events=[ChaosEvent(kind="kill", after_results=1)]
            ),
        )
        survivor = start_worker_thread(
            coord.address, name="survivor", heartbeat_interval=0.1
        )
        try:
            report = coord.execute(_jobs(specs))
        finally:
            coord.close()
            doomed.stop()
            survivor.stop()
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert _metric(tele, "cluster_workers_lost_total") >= 1
        # Every cell committed exactly once even if a lease was reclaimed
        # from the dead worker and re-executed elsewhere.
        assert len(report.outcomes) == 6

    def test_unstarted_backlog_is_stolen_by_idle_worker(self, tmp_path):
        tele = Telemetry(enabled=True)
        coord = self._coordinator("t-steal", telemetry=tele)
        counter = tmp_path / "c"
        # Two slow cells: capacity-1 worker gets both leases (backlog
        # factor 2) but can only run one at a time.
        specs = [
            _spec("cluster_sleep", sleep=0.6, value=v,
                  counter=str(counter))
            for v in range(2)
        ]
        box = {}

        def drive():
            box["report"] = coord.execute(_jobs(specs))

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        busy = start_worker_thread(coord.address, name="busy", capacity=1)
        time.sleep(0.3)  # busy now runs cell 0 with cell 1 unstarted
        idle = start_worker_thread(coord.address, name="idle", capacity=1)
        thread.join(timeout=15.0)
        try:
            assert not thread.is_alive()
            report = box["report"]
            assert all(o.status == "ok" for o in report.outcomes.values())
            assert report.steals >= 1
            assert _metric(tele, "cluster_steals_total") >= 1
        finally:
            coord.close()
            busy.stop()
            idle.stop()

    def test_worker_reregisters_after_coordinator_restart(self):
        address = "inproc://t-restart"
        first = self._coordinator("t-restart")
        worker = start_worker_thread(
            address,
            name="steady",
            heartbeat_interval=0.1,
            reconnect_timeout=15.0,
            reconnect_delay=0.05,
        )
        specs_a = [_spec("cluster_echo", value=v) for v in (1, 2)]
        specs_b = [_spec("cluster_echo", value=v) for v in (3, 4)]
        try:
            report_a = first.execute(_jobs(specs_a))
            assert all(o.status == "ok" for o in report_a.outcomes.values())
            # Crash the coordinator: drop every connection abruptly, no
            # shutdown goodbye (close() would tell workers to exit).
            first.listener.close()
            for remote in first._workers.values():
                remote.conn.close()
            second = self._coordinator("t-restart")
            try:
                report_b = second.execute(_jobs(specs_b))
                assert all(
                    o.status == "ok" for o in report_b.outcomes.values()
                )
                assert report_b.peak_workers >= 1
            finally:
                second.close()
        finally:
            worker.stop()

    def test_closed_coordinator_rejects_execute(self):
        coord = self._coordinator("t-closed-exec")
        coord.close()
        with pytest.raises(comm.ClusterError):
            coord.execute([])


class TestClusterSweep:
    """SweepRunner integration: ``cluster="inproc"`` vs the local pool."""

    def _runner(self, tmp_path, **kw):
        kw.setdefault("use_cache", False)
        kw.setdefault("progress", False)
        kw.setdefault("retry_backoff", 0.05)
        return SweepRunner(cache_dir=tmp_path / "cache", **kw)

    def test_results_bit_identical_to_local_pool(self, tmp_path):
        specs = [
            RunSpec(
                kind="single",
                params={
                    "scheduler": sched,
                    "workload": {"name": "layered", "kind": "matmul",
                                 "total": 20, "layers": 5,
                                 "parallelism": 2},
                    "machine": "jetson_tx2",
                },
                seed=s,
                metrics=("makespan", "tasks_completed"),
            )
            for sched in ("rws", "da")
            for s in (0, 1)
        ]
        want = self._runner(tmp_path, jobs=1).run(specs)
        pop_stats()
        runner = self._runner(tmp_path, jobs=2, cluster="inproc")
        try:
            got = runner.run(specs)
        finally:
            runner.close()
        assert got == want
        (stats,) = pop_stats()
        assert stats.executed == len(specs)
        assert stats.jobs == 2  # peak live cluster workers

    def test_each_cell_executes_exactly_once(self, tmp_path):
        counter = tmp_path / "c"
        specs = [
            _spec("cluster_mark", counter=str(counter), value=v)
            for v in range(8)
        ]
        runner = self._runner(tmp_path, jobs=3, cluster="inproc")
        try:
            rows = runner.run(specs)
        finally:
            runner.close()
        assert [r["value"] for r in rows] == [float(v) for v in range(8)]
        assert _executions(counter) == 8

    def test_remote_exception_becomes_error_result(self, tmp_path):
        pop_stats()
        runner = self._runner(tmp_path, jobs=2, cluster="inproc")
        try:
            rows = runner.run([
                _spec("chaos_raise_cluster", value=9),
                _spec("cluster_echo", value=1),
            ])
        finally:
            runner.close()
        assert is_error_result(rows[0])
        err = rows[0][ERROR_KEY]
        assert err["kind"] == "exception"
        assert err["type"] == "ValueError"
        assert rows[1] == {"value": 1.0}
        (stats,) = pop_stats()
        assert stats.failures == 1
        assert stats.retries == 0  # deterministic: not retried

    def test_timeout_enforced_through_isolate_workers(self, tmp_path):
        pop_stats()
        runner = self._runner(
            tmp_path, jobs=1, cluster="inproc", timeout=0.4, max_attempts=1
        )
        start = time.perf_counter()
        try:
            (row,) = runner.run([_spec("cluster_sleep", sleep=60.0)])
        finally:
            runner.close()
        assert time.perf_counter() - start < 30.0
        assert is_error_result(row)
        assert row[ERROR_KEY]["kind"] == "timeout"
        (stats,) = pop_stats()
        assert stats.timeouts >= 1
        assert stats.exhausted == 1

    def test_exhausted_cells_counted_in_stats(self, tmp_path):
        pop_stats()
        runner = self._runner(
            tmp_path, jobs=1, cluster="inproc", timeout=0.3, max_attempts=2
        )
        try:
            (row,) = runner.run([_spec("cluster_sleep", sleep=60.0)])
        finally:
            runner.close()
        assert is_error_result(row)
        assert row[ERROR_KEY]["attempts"] == 2
        (stats,) = pop_stats()
        assert stats.exhausted == 1
        assert stats.retries >= 1

    def test_checkpoint_resume_across_cluster_sweeps(self, tmp_path):
        counter = tmp_path / "c"
        specs = [
            _spec("cluster_mark", counter=str(counter), value=v)
            for v in range(4)
        ]
        pop_stats()
        first = self._runner(
            tmp_path, jobs=2, cluster="inproc", resume=True, label="fig"
        )
        try:
            first.run(specs)
        finally:
            first.close()
        assert _executions(counter) == 4
        # The resumed sweep replays from the checkpoint — no cluster
        # re-execution of committed cells.
        second = self._runner(
            tmp_path, jobs=2, cluster="inproc", resume=True, label="fig"
        )
        try:
            rows = second.run(specs)
        finally:
            second.close()
        assert [r["value"] for r in rows] == [0.0, 1.0, 2.0, 3.0]
        assert _executions(counter) == 4
        stats = pop_stats()
        assert stats[-1].resumed == 4
        assert stats[-1].executed == 0


class TestChaosProof:
    def test_chaos_run_bit_identical_with_faults_observed(self):
        # Seeded kills/pauses/stalls against an inproc cluster: results
        # must match the local pool bit-for-bit, with at least one lease
        # expiry, one reclaim and one suppressed duplicate observed.
        counters = run_chaos_proof(seed=0, log=lambda *a, **k: None)
        assert counters["cluster_leases_expired_total"] >= 1
        assert counters["cluster_leases_reclaimed_total"] >= 1
        assert counters["cluster_reexec_suppressed_total"] >= 1
        assert counters["cluster_workers_lost_total"] >= 1


class TestTcpWorkerSubprocess:
    def test_two_worker_tcp_sweep_matches_local(self, tmp_path):
        specs = [
            RunSpec(
                kind="single",
                params={
                    "scheduler": sched,
                    "workload": {"name": "layered", "kind": "matmul",
                                 "total": 20, "layers": 5,
                                 "parallelism": 2},
                    "machine": "jetson_tx2",
                },
                seed=s,
                metrics=("makespan", "tasks_completed"),
            )
            for sched in ("rws", "dam-c")
            for s in (0, 1)
        ]
        local = SweepRunner(
            jobs=1, use_cache=False, progress=False,
            cache_dir=tmp_path / "cache",
        )
        want = local.run(specs)

        runner = SweepRunner(
            jobs=1, use_cache=False, progress=False,
            cache_dir=tmp_path / "cache", cluster="tcp://127.0.0.1:0",
            label="tcp-smoke",
        )
        coordinator = runner._ensure_coordinator()
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cluster.worker",
                    "--connect", coordinator.address,
                    "--name", f"tcp-{i}",
                    "--no-isolate",
                    "--reconnect-timeout", "20",
                ],
                env=env,
            )
            for i in range(2)
        ]
        try:
            got = runner.run(specs)
        finally:
            runner.close()  # sends shutdown to both workers
            for proc in workers:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
        assert got == want
        # An orderly shutdown, not a kill, on both workers.
        assert [p.returncode for p in workers] == [0, 0]


class TestSettingsValidation:
    def test_cluster_address_validated(self):
        from repro.experiments.common import ExperimentSettings

        with pytest.raises(ConfigurationError):
            ExperimentSettings(cluster="bogus")
        ExperimentSettings(cluster="inproc")
        ExperimentSettings(cluster="tcp://127.0.0.1:7777")


@executor("chaos_raise_cluster")
def _raise_cluster(spec):
    raise ValueError(f"bad parameter {spec.params['value']}")
