"""Tests for WSQ semantics and assemblies."""

import pytest

from repro.errors import RuntimeStateError
from repro.graph.task import Priority, Task
from repro.kernels.base import WorkProfile
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.topology import ExecutionPlace
from repro.runtime.assembly import Assembly
from repro.runtime.queues import WorkStealingQueue
from repro.sim.environment import Environment


def make_task(tid, priority=Priority.LOW):
    return Task(tid, FixedWorkKernel("k", work=1.0), priority=priority)


class TestWorkStealingQueue:
    def test_owner_pops_lifo(self):
        q = WorkStealingQueue(0)
        a, b = make_task(1), make_task(2)
        q.push(a)
        q.push(b)
        assert q.pop_local() is b
        assert q.pop_local() is a
        assert q.pop_local() is None

    def test_thief_steals_fifo(self):
        q = WorkStealingQueue(0)
        a, b = make_task(1), make_task(2)
        q.push(a)
        q.push(b)
        assert q.steal(lambda t: True) is a

    def test_steal_skips_exempt_tasks(self):
        q = WorkStealingQueue(0)
        high = make_task(1, Priority.HIGH)
        low = make_task(2, Priority.LOW)
        q.push(high)
        q.push(low)
        stolen = q.steal(lambda t: not t.is_high_priority)
        assert stolen is low
        assert len(q) == 1  # high remains

    def test_steal_from_empty(self):
        q = WorkStealingQueue(0)
        assert q.steal(lambda t: True) is None

    def test_steal_none_eligible(self):
        q = WorkStealingQueue(0)
        q.push(make_task(1, Priority.HIGH))
        assert q.steal(lambda t: not t.is_high_priority) is None
        assert len(q) == 1

    def test_peek_all_is_snapshot(self):
        q = WorkStealingQueue(0)
        a = make_task(1)
        q.push(a)
        snapshot = q.peek_all()
        q.pop_local()
        assert snapshot == (a,)


class TestAssembly:
    def _assembly(self, env, width=2, leader=2):
        task = make_task(0)
        place = ExecutionPlace(leader, width)
        cores = tuple(range(leader, leader + width))
        profile = WorkProfile(1.0, 0.0, 0.0)
        return Assembly(env, task, place, cores, profile)

    def test_join_rendezvous(self):
        env = Environment()
        asm = self._assembly(env)
        assert not asm.join(2)
        assert not asm.all_joined
        assert asm.join(3)
        assert asm.all_joined

    def test_join_wrong_core_rejected(self):
        env = Environment()
        asm = self._assembly(env)
        with pytest.raises(RuntimeStateError):
            asm.join(5)

    def test_double_join_rejected(self):
        env = Environment()
        asm = self._assembly(env)
        asm.join(2)
        with pytest.raises(RuntimeStateError):
            asm.join(2)

    def test_leader_and_width(self):
        env = Environment()
        asm = self._assembly(env, width=4, leader=2)
        assert asm.leader == 2
        assert asm.width == 4
