"""Stress/property tests of the discrete-event engine itself."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.environment import Environment
from repro.sim.resources import Store

FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@FAST
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40
    )
)
def test_time_is_monotone_and_all_events_fire(delays):
    """Arbitrary one-shot timeouts fire exactly once, in time order."""
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append((env.now, delay))

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert len(fired) == len(delays)
    times = [t for t, _d in fired]
    assert times == sorted(times)
    for t, d in fired:
        assert t == pytest.approx(d)


@FAST
@given(
    chain=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20
    )
)
def test_sequential_delays_accumulate_exactly(chain):
    env = Environment()
    stamps = []

    def proc():
        for delay in chain:
            yield env.timeout(delay)
            stamps.append(env.now)

    env.process(proc())
    env.run()
    total = 0.0
    for delay, stamp in zip(chain, stamps):
        total += delay
        assert stamp == pytest.approx(total)


@FAST
@given(
    n_producers=st.integers(min_value=1, max_value=5),
    items_each=st.integers(min_value=1, max_value=10),
    n_consumers=st.integers(min_value=1, max_value=5),
)
def test_store_conserves_items_across_many_processes(
    n_producers, items_each, n_consumers
):
    """Producer/consumer fan-in/fan-out over a Store loses nothing."""
    env = Environment()
    store = Store(env)
    total = n_producers * items_each
    consumed = []

    def producer(pid):
        for i in range(items_each):
            yield env.timeout(0.1 * ((pid + i) % 3))
            store.put((pid, i))

    # Distribute the consumption load over the consumers.
    base, extra = divmod(total, n_consumers)

    def consumer(cid, count):
        for _ in range(count):
            item = yield store.get()
            consumed.append(item)

    for pid in range(n_producers):
        env.process(producer(pid))
    for cid in range(n_consumers):
        env.process(consumer(cid, base + (1 if cid < extra else 0)))
    env.run()
    assert len(consumed) == total
    assert len(set(consumed)) == total


@FAST
@given(seed_delays=st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
    ),
    min_size=1, max_size=15,
))
def test_process_waiting_on_process(seed_delays):
    """Nested process waits resolve with the inner result, at the inner
    completion time."""
    env = Environment()
    outcomes = []

    def inner(delay, value):
        yield env.timeout(delay)
        return value

    def outer(start, delay, value):
        yield env.timeout(start)
        result = yield env.process(inner(delay, value))
        outcomes.append((env.now, result))

    for i, (start, delay) in enumerate(seed_delays):
        env.process(outer(start, delay, i))
    env.run()
    assert len(outcomes) == len(seed_delays)
    for (t, value) in outcomes:
        start, delay = seed_delays[value]
        assert t == pytest.approx(start + delay)
