"""Tests for the live sweep telemetry layer (repro.telemetry).

Covers the PR's acceptance criteria: metrics-on runs bit-identical to
metrics-off runs (the same contract the tracer honors), histogram bucket
edge semantics, cross-process snapshot merging, the Prometheus text
exposition (pinned by a golden file and its own validator), the worker
heartbeat table's diagnostic-only straggler detection, the structured
progress emitter, both front-ends (dashboard and HTML report), and the
artifact files written next to each sweep manifest.
"""

from __future__ import annotations

import io
import json
import math
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import SCHEDULER_NAMES, make_scheduler
from repro.errors import ConfigurationError
from repro.graph.generators import random_layered_dag
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import jetson_tx2
from repro.runtime.executor import SimulatedRuntime
from repro.session import quick_run
from repro.sim.environment import Environment
from repro.sweep import RunSpec, SweepRunner, pop_stats
from repro.sweep.registry import executor
from repro.telemetry import (
    METRICS_JSONL,
    METRICS_PROM,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    MetricsRegistry,
    ProgressEmitter,
    Telemetry,
    WorkerTable,
    get_registry,
    install,
    straggler_after,
)
from repro.telemetry.dashboard import Dashboard
from repro.telemetry.heartbeat import (
    STRAGGLER_FACTOR,
    STRAGGLER_TIMEOUT_FRACTION,
)
from repro.telemetry.prom import (
    main as prom_main,
    render_prometheus,
    validate_exposition,
    write_prometheus,
)
from repro.telemetry.registry import Histogram, _NULL_METRIC
from repro.telemetry.report import REPORT_HTML, write_report
from repro.telemetry.report import main as report_main

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "metrics.prom")

KERNELS = [
    FixedWorkKernel("small", work=2e-4, parallel_fraction=0.5),
    FixedWorkKernel("big", work=2e-3, parallel_fraction=0.95,
                    memory_intensity=0.4),
]


@executor("telem_sim")
def _telem_sim(spec):
    """A tiny real simulation run — deterministic for a given spec."""
    result = quick_run(
        scheduler=spec.params["scheduler"],
        parallelism=2,
        total_tasks=40,
        seed=spec.params["seed"],
    )
    return {
        "makespan": result.makespan,
        "tasks": float(result.tasks_completed),
    }


def _sim_specs(seeds=(0, 1), schedulers=("rws", "dam-c")):
    return [
        RunSpec(
            kind="telem_sim",
            params={"scheduler": sched, "seed": seed},
            metrics=("makespan", "tasks"),
            tags={"scheduler": sched, "seed": seed},
        )
        for sched in schedulers
        for seed in seeds
    ]


def _run(scheduler: str, seed: int, layers: int, width: int):
    graph = random_layered_dag(KERNELS, layers, width, seed=seed)
    env = Environment()
    runtime = SimulatedRuntime(
        env, jetson_tx2(), graph, make_scheduler(scheduler), seed=seed
    )
    return runtime, runtime.run()


def _fingerprint(runtime, result):
    """Everything observable about a run: records, steals, RNG states."""
    records = tuple(
        (r.task_id, r.type_name, r.place, r.ready_time, r.dequeue_time,
         r.exec_start, r.exec_end, r.observed, r.stolen)
        for r in result.collector.records
    )
    rng_draws = tuple(
        float(rng.random()) for rng in runtime._steal_rngs
    ) + (float(runtime._noise_rng.random()), float(runtime._wake_rng.random()))
    return (
        result.makespan,
        result.tasks_completed,
        records,
        dict(result.collector.core_busy),
        result.collector.steals,
        result.collector.failed_steal_scans,
        rng_draws,
    )


class TestBitIdentity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        scheduler=st.sampled_from(SCHEDULER_NAMES),
        seed=st.integers(min_value=0, max_value=10_000),
        layers=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=4),
    )
    def test_metered_run_bit_identical_to_unmetered(
        self, scheduler, seed, layers, width
    ):
        """An installed (enabled) registry changes nothing: same records,
        same post-run RNG states — metrics never consume randomness."""
        base_rt, base = _run(scheduler, seed, layers, width)
        registry = MetricsRegistry()
        previous = install(registry)
        try:
            metered_rt, metered = _run(scheduler, seed, layers, width)
        finally:
            install(previous)
        assert _fingerprint(base_rt, base) == _fingerprint(
            metered_rt, metered
        )

    def test_sweep_results_identical_with_telemetry_on(self, tmp_path):
        """End to end through the worker pool: the same spec list yields
        byte-identical metric rows with telemetry on and off."""
        specs = _sim_specs()
        plain = SweepRunner(
            jobs=2, use_cache=False, progress=False,
            cache_dir=tmp_path / "c1",
        ).run(specs)
        tele = Telemetry(
            label="bitident", enabled=True, out_dir=tmp_path / "out"
        )
        metered = SweepRunner(
            jobs=2, use_cache=False, progress=False,
            cache_dir=tmp_path / "c2", telemetry=tele,
        ).run(specs)
        pop_stats()
        assert plain == metered
        # ...and the metered sweep actually recorded something.
        snap = tele.registry.snapshot()
        assert snap["sweep_runs_finished_total"]["value"] == len(specs)
        assert snap["sweep_run_seconds"]["count"] == len(specs)


class TestRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_get_or_create_is_idempotent_and_type_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        assert reg.names() == ["x"]
        assert "x" in reg and len(reg) == 1

    def test_histogram_bucket_edges(self):
        """Prometheus ``le`` semantics: a value equal to a bound lands in
        that bound's bucket; anything above the last bound overflows."""
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0):   # both <= 1.0
            h.observe(v)
        h.observe(1.5)          # (1, 2]
        h.observe(2.0)          # == bound -> le="2"
        h.observe(4.0001)       # just past the last bound -> +Inf
        assert h.counts == [2, 2, 0, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.0001)

    def test_histogram_series_ring_buffer(self):
        h = Histogram("h", buckets=(1.0,), capacity=3)
        for v in range(5):
            h.observe(float(v))
        assert [v for _, v in h.series] == [2.0, 3.0, 4.0]

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_merge_folds_worker_snapshot(self):
        worker = MetricsRegistry()
        worker.counter("runs").inc(2)
        worker.gauge("depth").set(7)
        wh = worker.histogram("wall", buckets=(1.0, 2.0))
        wh.observe(0.5)
        wh.observe(5.0)

        parent = MetricsRegistry()
        parent.counter("runs").inc(1)
        parent.gauge("depth").set(3)
        ph = parent.histogram("wall", buckets=(1.0, 2.0))
        ph.observe(1.5)

        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["runs"]["value"] == 3.0          # counters add
        assert snap["depth"]["value"] == 7.0         # last write wins
        assert snap["wall"]["counts"] == [1, 1, 1]   # bucket counts add
        assert snap["wall"]["count"] == 3
        assert snap["wall"]["sum"] == pytest.approx(7.0)
        # Series re-stamped onto the parent clock, values preserved.
        assert sorted(v for _, v in ph.series) == [0.5, 1.5, 5.0]

    def test_merge_drops_incompatible_histogram_shapes(self):
        parent = MetricsRegistry()
        ph = parent.histogram("wall", buckets=(1.0, 2.0))
        ph.observe(0.5)
        parent.merge({
            "wall": {"type": "histogram", "buckets": [9.0],
                     "counts": [4, 4], "sum": 99.0, "count": 8},
            "junk": {"type": "nonsense", "value": 1},
            "scalar": 5,
        })
        snap = parent.snapshot()
        assert snap["wall"]["count"] == 1   # incompatible merge dropped
        assert "junk" not in snap and "scalar" not in snap
        parent.merge(None)  # no-op, never raises
        parent.merge({})

    def test_null_registry_records_nothing(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x") is _NULL_METRIC
        assert NULL_REGISTRY.gauge("x") is _NULL_METRIC
        assert NULL_REGISTRY.histogram("x") is _NULL_METRIC
        _NULL_METRIC.inc()
        _NULL_METRIC.set(5)
        _NULL_METRIC.observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}

    def test_install_swaps_process_registry(self):
        assert get_registry() is NULL_REGISTRY
        reg = MetricsRegistry()
        previous = install(reg)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is reg
        finally:
            install(None)
        assert get_registry() is NULL_REGISTRY


def _golden_snapshot():
    reg = MetricsRegistry()
    reg.counter("sweep_runs_finished", "Runs finished.").inc(3)
    reg.counter("sweep_retries_total").inc(1)
    reg.gauge("sweep_queue_depth", "Pending runs.").set(4.5)
    h = reg.histogram(
        "sweep_run_seconds", "Run wall seconds.", buckets=(0.1, 1.0, 10.0)
    )
    for v in (0.05, 0.1, 0.5, 2.0, 20.0):
        h.observe(v)
    return reg.snapshot()


class TestPrometheus:
    def test_golden_file(self):
        """The exposition format is pinned byte for byte."""
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            expected = fh.read()
        assert render_prometheus(_golden_snapshot()) == expected

    def test_rendered_output_validates(self):
        assert validate_exposition(render_prometheus(_golden_snapshot())) == []

    def test_validator_rejects_malformed_expositions(self):
        assert any(
            "no TYPE" in p for p in validate_exposition("repro_x 1\n")
        )
        bad_buckets = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
        )
        assert any(
            "not cumulative" in p for p in validate_exposition(bad_buckets)
        )
        missing_inf = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 1\nrepro_h_count 2\n"
        )
        assert any(
            "+Inf" in p for p in validate_exposition(missing_inf)
        )
        negative = "# TYPE repro_c counter\nrepro_c_total -1\n"
        assert any("negative" in p for p in validate_exposition(negative))
        assert any(
            "malformed sample" in p
            for p in validate_exposition("this is not prometheus\n")
        )

    def test_infinity_and_integers_format(self):
        snap = {"g": {"type": "gauge", "value": math.inf}}
        assert "repro_g +Inf" in render_prometheus(snap)
        snap = {"c": {"type": "counter", "value": 7.0}}
        assert "repro_c_total 7\n" in render_prometheus(snap)

    def test_cli_validator(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        write_prometheus(good, _golden_snapshot())
        assert prom_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.prom"
        bad.write_text("repro_x 1\n")
        assert prom_main([str(bad)]) == 1
        assert prom_main([str(tmp_path / "missing.prom")]) == 1


class TestWorkerTable:
    def test_straggler_after_bounds(self):
        assert straggler_after(None, None) is None
        assert straggler_after(2.0, None) == STRAGGLER_FACTOR * 2.0
        assert straggler_after(None, 10.0) == STRAGGLER_TIMEOUT_FRACTION * 10.0
        # Both yardsticks known: the tighter one wins.
        assert straggler_after(1.0, 4.0) == min(3.0, 2.0)

    def test_lifecycle_and_straggler_detection(self):
        table = WorkerTable()
        ident = table.spawn(pid=1234)
        table.assign(ident, "abc", "fig4", attempt=1, width=1, now=0.0,
                     expected=1.0)
        assert table.busy() == 1 and table.live() == 1
        # Within the 3x-expected envelope: nothing flagged.
        assert table.check_stragglers(now=2.9) == []
        # Past it: flagged exactly once, and never again for this run.
        fresh = table.check_stragglers(now=3.1)
        assert [v.ident for v in fresh] == [ident]
        assert table.view(ident).straggler is True
        assert table.check_stragglers(now=100.0) == []
        assert table.stragglers_flagged == 1
        # Finishing clears the flag and counts the run.
        table.finish(ident)
        view = table.view(ident)
        assert view.state == "idle" and not view.straggler
        assert view.runs_done == 1
        table.retire(ident)
        assert table.live() == 0
        assert table.snapshot(now=0.0) == []  # retired rows excluded

    def test_straggler_envelope_scales_with_batch_width(self):
        table = WorkerTable()
        ident = table.spawn(pid=1)
        table.assign(ident, "k", "fig4", attempt=1, width=4, now=0.0,
                     expected=1.0)
        assert table.check_stragglers(now=11.0) == []   # 4 * 3s envelope
        assert len(table.check_stragglers(now=12.1)) == 1

    def test_no_yardstick_means_no_flag(self):
        table = WorkerTable()
        ident = table.spawn(pid=1)
        table.assign(ident, "k", "fig4", attempt=1, width=1, now=0.0)
        assert table.check_stragglers(now=1e6) == []

    def test_heartbeats_update_age(self):
        table = WorkerTable()
        ident = table.spawn(pid=1)
        table.assign(ident, "k", "fig4", attempt=1, width=1, now=10.0)
        view = table.view(ident)
        assert view.heartbeat_age(now=11.0) is None  # none received yet
        table.heartbeat(ident, now=11.0)
        assert view.heartbeats == 1
        assert view.heartbeat_age(now=11.5) == pytest.approx(0.5)
        table.heartbeat(999, now=11.0)  # unknown ident: ignored
        table.finish(ident)
        table.heartbeat(ident, now=12.0)  # idle: ignored
        assert view.heartbeats == 1

    def test_inline_pseudo_worker_is_stable(self):
        table = WorkerTable()
        assert table.inline() == 0
        assert table.inline() == 0
        assert table.spawn(pid=1) == 1


class TestProgressEmitter:
    def test_line_format_matches_legacy_prints(self):
        stream = io.StringIO()
        emitter = ProgressEmitter("fig4", enabled=True, stream=stream)
        emitter.emit("3/10 done")
        assert stream.getvalue() == "[sweep:fig4] 3/10 done\n"

    def test_disabled_records_but_does_not_print(self):
        stream = io.StringIO()
        emitter = ProgressEmitter("fig4", enabled=False, stream=stream)
        emitter.emit("quiet")
        assert stream.getvalue() == ""
        assert [line for _, _, line in emitter.tail()] == [
            "[sweep:fig4] quiet"
        ]

    def test_sink_intercepts_lines(self):
        stream = io.StringIO()
        emitter = ProgressEmitter("fig4", enabled=True, stream=stream)
        seen = []
        emitter.sink = lambda line, kind: seen.append((line, kind))
        emitter.emit("slow run", kind="straggler")
        assert stream.getvalue() == ""
        assert seen == [("[sweep:fig4] slow run", "straggler")]

    def test_tail_is_bounded_and_ordered(self):
        emitter = ProgressEmitter("x", enabled=False, keep=3)
        for i in range(5):
            emitter.emit(str(i))
        assert [line for _, _, line in emitter.tail(2)] == [
            "[sweep:x] 3", "[sweep:x] 4"
        ]


class TestTelemetryHub:
    def test_snapshot_shape(self):
        tele = Telemetry(label="fig4", enabled=True)
        tele.progress_emitter = ProgressEmitter("fig4", enabled=False)
        tele.progress_emitter.emit("hello")
        tele.set_progress(total=10, done=4, eta=2.5)
        ident = tele.workers.spawn(pid=1)
        tele.workers.assign(ident, "k", "fig4", attempt=1, width=1,
                            now=tele.now())
        tele.registry.counter("sweep_runs_finished").inc(4)
        snap = tele.snapshot()
        assert snap["label"] == "fig4"
        assert snap["progress"] == {
            "total": 10, "done": 4, "eta": 2.5,
            "elapsed": snap["progress"]["elapsed"],
        }
        assert snap["workers"][0]["state"] == "busy"
        assert snap["stragglers"] == 0
        assert snap["log"][-1]["line"] == "[sweep:fig4] hello"
        assert snap["metrics"]["sweep_runs_finished"]["value"] == 4.0

    def test_disabled_hub_is_inert(self, tmp_path):
        tele = Telemetry(enabled=False, out_dir=tmp_path)
        assert tele.registry is NULL_REGISTRY
        tele.begin()
        assert tele.flush(force=True) is False
        tele.finalize()
        assert list(tmp_path.iterdir()) == []
        assert NULL_TELEMETRY.enabled is False

    def test_artifact_files(self, tmp_path):
        tele = Telemetry(label="t", enabled=True, out_dir=tmp_path,
                         flush_interval=0.0)
        tele.begin()
        tele.registry.counter("sweep_runs_finished").inc()
        tele.registry.histogram("sweep_run_seconds").observe(0.2)
        assert tele.flush() is True
        tele.finalize()
        lines = (tmp_path / METRICS_JSONL).read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            snap = json.loads(line)
            assert snap["metrics"]["sweep_runs_finished"]["value"] == 1.0
        # Periodic lines drop histogram series; the final one keeps them.
        assert "series" not in json.loads(lines[0])["metrics"][
            "sweep_run_seconds"
        ]
        assert json.loads(lines[-1])["metrics"]["sweep_run_seconds"][
            "series"
        ]
        prom = (tmp_path / METRICS_PROM).read_text()
        assert validate_exposition(prom) == []
        assert "repro_sweep_runs_finished_total 1" in prom

    def test_begin_truncates_stale_stream(self, tmp_path):
        (tmp_path / METRICS_JSONL).write_text("stale\n")
        tele = Telemetry(label="t", enabled=True, out_dir=tmp_path)
        tele.begin()
        tele.flush(force=True)
        lines = (tmp_path / METRICS_JSONL).read_text().splitlines()
        assert len(lines) == 1 and lines[0] != "stale"


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestDashboard:
    def _hub(self):
        tele = Telemetry(label="fig4", enabled=True)
        tele.progress_emitter = ProgressEmitter("fig4", enabled=False)
        tele.set_progress(total=8, done=2, eta=1.0)
        ident = tele.workers.spawn(pid=42)
        tele.workers.assign(ident, "abcdef123456", "fig4", attempt=2,
                            width=1, now=tele.now(), expected=0.001)
        tele.workers.check_stragglers(tele.now() + 10.0)
        return tele

    def test_non_tty_plain_summary(self):
        stream = io.StringIO()
        dash = Dashboard(self._hub(), stream=stream)
        assert dash.tty is False
        dash.open()
        dash.close()
        out = stream.getvalue()
        assert "[sweep:fig4] watch: 2/8 done, 1 busy" in out
        assert "\x1b[" not in out  # no ANSI on a non-TTY

    def test_tty_frame_redraw(self):
        stream = _TtyStream()
        tele = self._hub()
        dash = Dashboard(tele, stream=stream)
        assert dash.tty is True
        dash.open()
        tele.progress_emitter.emit("slow run", kind="straggler")
        dash.tick(force=True)
        dash.close()
        out = stream.getvalue()
        assert "\x1b[2K" in out          # clear-line redraws
        assert "sweep:fig4" in out
        assert "STRAGGLER" in out        # flagged worker row
        assert "[sweep:fig4] slow run" in out  # log pane content
        # The dashboard captured the emitter while open, released after.
        assert tele.progress_emitter.sink is None


class TestReport:
    @pytest.fixture(scope="class")
    def sweep_dir(self, tmp_path_factory):
        """A real tiny sweep with telemetry + manifest artifacts."""
        out = tmp_path_factory.mktemp("telemetry") / "fig4"
        tele = Telemetry(label="fig4", enabled=True, out_dir=out,
                         flush_interval=0.0)
        runner = SweepRunner(
            jobs=2, use_cache=False, progress=False,
            cache_dir=tmp_path_factory.mktemp("cache"),
            label="fig4", manifest_dir=out, telemetry=tele,
        )
        runner.run(_sim_specs())
        pop_stats()
        return out

    def test_manifest_entries_carry_wall_time_and_history(self, sweep_dir):
        with open(sweep_dir / "manifest.json") as fh:
            manifest = json.load(fh)
        runs = manifest["runs"]
        assert len(runs) == 4
        for entry in runs:
            (attempt,) = entry["history"]
            assert attempt["outcome"] == "ok"
            assert attempt["attempt"] == 1
            assert attempt["wall"] > 0

    def test_report_is_standalone_with_sparklines(self, sweep_dir):
        path = write_report(sweep_dir, title="fig4")
        html = path.read_text()
        assert path.name == REPORT_HTML
        assert html.startswith("<!DOCTYPE html")
        assert "<svg" in html and "<polyline" in html
        assert "fig4" in html
        # Single-file artifact: no external scripts or stylesheets.
        assert "<script src" not in html and "<link" not in html
        # Per-scheduler breakdown reflects the sweep's tags.
        assert "dam-c" in html and "rws" in html

    def test_report_cli(self, sweep_dir, tmp_path, capsys):
        out = tmp_path / "custom.html"
        assert report_main([str(sweep_dir), "-o", str(out)]) == 0
        assert "<svg" in out.read_text()
        assert report_main([str(tmp_path / "nope")]) != 0
