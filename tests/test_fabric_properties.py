"""Property-based tests of the fabric: no loss, FIFO per (src, tag)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed.message import Message
from repro.distributed.network import Fabric
from repro.machine.interconnect import Interconnect
from repro.sim.environment import Environment

FAST = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

message_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),      # src
        st.integers(min_value=0, max_value=3),      # dst
        st.integers(min_value=0, max_value=2),      # tag
        st.floats(min_value=0.0, max_value=1e6),    # bytes
    ),
    min_size=1,
    max_size=30,
)


@FAST
@given(plan=message_plan)
def test_no_message_lost(plan):
    """Every sent message is eventually received by a matching receiver."""
    env = Environment()
    fabric = Fabric(env, 4, Interconnect())
    received = []

    # One receiver process per (dst, src, tag) triple in the plan.
    from collections import Counter
    counts = Counter((dst, src, tag) for src, dst, tag, _b in plan)

    def receiver(dst, src, tag, n):
        for _ in range(n):
            msg = yield fabric.recv(dst, src, tag)
            received.append(msg.msg_id)

    for (dst, src, tag), n in counts.items():
        env.process(receiver(dst, src, tag, n))

    sent = []
    for src, dst, tag, size in plan:
        msg = Message(src, dst, tag, size)
        sent.append(msg.msg_id)
        fabric.send(msg)
    env.run()
    assert sorted(received) == sorted(sent)
    assert fabric.messages_delivered == len(plan)


@FAST
@given(
    sizes=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=10
    )
)
def test_fifo_per_src_tag(sizes):
    """Messages between one (src, dst, tag) triple arrive in send order,
    regardless of their sizes (the link serializes)."""
    env = Environment()
    fabric = Fabric(env, 2, Interconnect())
    order = []

    def receiver(n):
        for _ in range(n):
            msg = yield fabric.recv(1, 0, 0)
            order.append(msg.payload)

    env.process(receiver(len(sizes)))
    for i, size in enumerate(sizes):
        fabric.send(Message(0, 1, 0, size, payload=i))
    env.run()
    assert order == list(range(len(sizes)))


@FAST
@given(
    n=st.integers(min_value=1, max_value=10),
    size=st.floats(min_value=1.0, max_value=1e6),
)
def test_link_serialization_time(n, size):
    """n equal messages on one link take n x wire-time to all arrive."""
    env = Environment()
    link = Interconnect(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    fabric = Fabric(env, 2, link)
    arrivals = []

    def receiver():
        for _ in range(n):
            yield fabric.recv(1, 0, 0)
            arrivals.append(env.now)

    env.process(receiver())
    for _ in range(n):
        fabric.send(Message(0, 1, 0, size))
    env.run()
    wire = link.transfer_time(size)
    assert arrivals[-1] == pytest.approx(n * wire)
