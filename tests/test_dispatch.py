"""Tests for the dispatch fast lane (PR 10).

Covers the delta codec (:mod:`repro.sweep.wire`) with Hypothesis
round-trip and fuzz properties, RunSpec key memoization, batched
leasing + spec-aware placement in the cluster coordinator, the framed
TCP protocol's malformed-input behavior (typed error, never a hang),
and fast-vs-legacy bit-identity through the real sweep engine.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import comm, protocol
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ExecuteReport,
    _Cell,
    _Lease,
    _Remote,
)
from repro.cluster.worker import start_worker_thread
from repro.sweep import RunSpec, SweepRunner, wire
from repro.sweep.registry import executor
from repro.telemetry import Telemetry


@executor("dispatch_echo")
def _echo(spec):
    return {"value": float(spec.params["value"])}


def _spec(value, **extra):
    return RunSpec(
        kind="dispatch_echo", params={"value": value, **extra},
        metrics=("value",), seed=value,
    )


def _metric(telemetry, name) -> float:
    return telemetry.registry.get(name).value


# -- RunSpec key memoization (satellite: computed once per object) -----
class TestKeyMemoization:
    def test_key_and_cost_key_hash_exactly_once(self, monkeypatch):
        import hashlib as real_hashlib

        import repro.sweep.spec as spec_mod

        spec = RunSpec(kind="single", params={"a": 1}, seed=7)
        calls = {"n": 0}

        class _CountingHashlib:
            @staticmethod
            def sha256(payload):
                calls["n"] += 1
                return real_hashlib.sha256(payload)

        monkeypatch.setattr(spec_mod, "hashlib", _CountingHashlib)
        keys = {spec.key() for _ in range(5)}
        cost_keys = {spec.cost_key() for _ in range(5)}
        assert len(keys) == len(cost_keys) == 1
        # One digest for key(), one for cost_key() — repeats are served
        # from the per-object memo.
        assert calls["n"] == 2

    def test_memoized_key_survives_pickle(self):
        import pickle

        spec = _spec(3)
        key = spec.key()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.key() == key
        assert clone == spec

    def test_equal_specs_hash_equal_regardless_of_memo_state(self):
        a = _spec(3)
        b = _spec(3)
        a.key()  # memoize only one of them
        assert a == b
        assert a.key() == b.key()


# -- delta codec: Hypothesis round-trip + fuzz -------------------------
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
_params = st.dictionaries(st.text(min_size=1, max_size=8), _scalars,
                          max_size=5)
_metrics = st.lists(st.text(min_size=1, max_size=8), min_size=1,
                    max_size=3, unique=True)


def _mk(kind, params, seed, metrics, tags):
    return RunSpec(kind=kind, params=params, seed=seed,
                   metrics=tuple(metrics), tags=tags)


class TestDeltaCodec:
    @settings(max_examples=60, deadline=None)
    @given(
        kind=st.sampled_from(["single", "kmeans_window", "x"]),
        base_params=_params, spec_params=_params,
        base_tags=_params, spec_tags=_params,
        base_seed=st.integers(min_value=0, max_value=2**40),
        spec_seed=st.integers(min_value=0, max_value=2**40),
        metrics=_metrics,
    )
    def test_roundtrip(self, kind, base_params, spec_params, base_tags,
                       spec_tags, base_seed, spec_seed, metrics):
        base = _mk(kind, base_params, base_seed, metrics, base_tags)
        spec = _mk(kind, spec_params, spec_seed, metrics, spec_tags)
        delta = wire.encode_delta(base, spec)
        rebuilt = wire.apply_delta(base, delta)
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()

    @settings(max_examples=60, deadline=None)
    @given(payload=st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=12,
    ))
    def test_fuzzed_delta_never_hangs_or_leaks(self, payload):
        base = _spec(1)
        try:
            rebuilt = wire.apply_delta(base, payload)
        except wire.SpecDeltaError:
            return  # the typed, retryable outcome
        assert isinstance(rebuilt, RunSpec)

    def test_interner_delta_smaller_and_decodable(self):
        interner = wire.SpecInterner()
        decoder = wire.SpecDecoder()
        base = _spec(0, pad="x" * 64)
        first = interner.encode(base)
        assert first.delta is None  # group base ships whole
        decoder.add_base(wire.wire_id(base), first.full)
        rep = _spec(1, pad="x" * 64)
        enc = interner.encode(rep)
        assert enc.delta is not None
        assert enc.wire_bytes < enc.full_bytes
        rebuilt = decoder.decode({"base": enc.base_id, "delta": enc.delta})
        assert rebuilt == rep and rebuilt.key() == rep.key()

    def test_unknown_base_is_typed_error(self):
        decoder = wire.SpecDecoder()
        with pytest.raises(wire.SpecDeltaError):
            decoder.decode({"base": "deadbeef", "delta": {}})

    def test_base_registration_is_content_checked(self):
        decoder = wire.SpecDecoder()
        data = wire.spec_to_wire(_spec(1))
        with pytest.raises(wire.SpecDeltaError):
            decoder.add_base("not-the-content-hash", data)

    def test_unknown_delta_field_rejected(self):
        with pytest.raises(wire.SpecDeltaError):
            wire.apply_delta(_spec(1), {"kindd": "single"})

    def test_batch_pseudo_specs_always_ship_whole(self):
        from repro.sweep.spec import BATCH_KIND

        interner = wire.SpecInterner()
        batch = RunSpec(kind=BATCH_KIND, params={"members": [1, 2]},
                        metrics=("value",))
        for _ in range(2):
            assert interner.encode(batch).delta is None


# -- framed TCP protocol: malformed input never hangs ------------------
class TestFramedProtocolRobustness:
    def _listener(self):
        return comm.listen("tcp://127.0.0.1:0")

    def _port(self, listener):
        return int(listener.address.rsplit(":", 1)[1])

    def _raw_send(self, port, payload: bytes):
        sock = socket.create_connection(("127.0.0.1", port), timeout=2.0)
        sock.sendall(payload)
        return sock

    def _assert_closes(self, server):
        deadline = time.monotonic() + 5.0
        with pytest.raises(comm.ConnectionClosed):
            while time.monotonic() < deadline:
                server.recv(timeout=0.05)
        # Reaching here before the deadline means no hang.
        assert time.monotonic() < deadline

    def test_garbage_json_frame_closes_connection(self):
        listener = self._listener()
        try:
            sock = self._raw_send(
                self._port(listener),
                struct.pack(">I", 9) + b"not json!",
            )
            server = listener.accept(timeout=2.0)
            assert server is not None
            self._assert_closes(server)
            sock.close()
        finally:
            listener.close()

    def test_oversized_frame_closes_connection(self):
        listener = self._listener()
        try:
            sock = self._raw_send(
                self._port(listener),
                struct.pack(">I", comm.MAX_FRAME_BYTES + 1),
            )
            server = listener.accept(timeout=2.0)
            assert server is not None
            self._assert_closes(server)
            sock.close()
        finally:
            listener.close()

    def test_truncated_frame_closes_connection(self):
        listener = self._listener()
        try:
            sock = self._raw_send(
                self._port(listener),
                struct.pack(">I", 100) + b'{"type": "regi',
            )
            server = listener.accept(timeout=2.0)
            assert server is not None
            sock.close()  # tear mid-frame
            self._assert_closes(server)
        finally:
            listener.close()

    @settings(max_examples=20, deadline=None)
    @given(garbage=st.binary(min_size=1, max_size=64))
    def test_fuzzed_bytes_error_or_parse_never_hang(self, garbage):
        listener = self._listener()
        try:
            sock = self._raw_send(self._port(listener), garbage)
            sock.close()
            server = listener.accept(timeout=2.0)
            if server is None:
                return  # connection died before accept — fine
            deadline = time.monotonic() + 5.0
            try:
                while time.monotonic() < deadline:
                    server.recv(timeout=0.05)
            except comm.ConnectionClosed:
                pass
            assert time.monotonic() < deadline  # typed error, no hang
        finally:
            listener.close()


# -- batched leasing + placement ---------------------------------------
class _FrameSink:
    """A fake worker connection collecting every frame sent to it."""

    closed = False

    def __init__(self):
        self.frames = []

    def send(self, message):
        self.frames.append(message)

    def close(self):
        self.closed = True


class TestBatchedLeasing:
    def test_batched_grants_save_roundtrips(self):
        tele = Telemetry(enabled=True)
        coord = ClusterCoordinator(
            "inproc://t-batch-grant", telemetry=tele, dispatch_fast=True
        )
        worker = start_worker_thread(
            coord.address, name="w0", capacity=2
        )
        specs = [_spec(v) for v in range(8)]
        try:
            report = coord.execute([(s.key(), s, 1) for s in specs])
        finally:
            coord.close()
            worker.stop()
        assert len(report.outcomes) == 8
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert _metric(tele, "dispatch_roundtrips_saved_total") > 0
        assert _metric(tele, "dispatch_deltas_total") > 0
        assert _metric(tele, "dispatch_bytes_saved_total") > 0
        # Bases ship at most once per group per connection.
        base_frames = _metric(tele, "dispatch_frames_total")
        assert base_frames > 0

    def test_legacy_lane_uses_single_leases(self):
        tele = Telemetry(enabled=True)
        coord = ClusterCoordinator(
            "inproc://t-legacy-grant", telemetry=tele, dispatch_fast=False
        )
        worker = start_worker_thread(coord.address, name="w0", capacity=1)
        specs = [_spec(v) for v in range(4)]
        try:
            report = coord.execute([(s.key(), s, 1) for s in specs])
        finally:
            coord.close()
            worker.stop()
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert _metric(tele, "dispatch_roundtrips_saved_total") == 0
        assert _metric(tele, "dispatch_deltas_total") == 0

    def test_batched_lease_revoke_still_two_phase(self):
        """A lease granted in a batch is still individually revocable."""
        coord = ClusterCoordinator(
            "inproc://t-batch-revoke", dispatch_fast=True
        )
        sink = _FrameSink()
        worker = _Remote(name="w0", conn=sink, capacity=2)
        coord._workers["w0"] = worker
        coord._queue = deque(
            _Cell(key=s.key(), spec=s) for s in (_spec(v) for v in range(4))
        )
        coord._unresolved = {c.key for c in coord._queue}
        coord._cells = {c.key: c for c in coord._queue}
        coord._report = ExecuteReport()
        try:
            coord._grant(time.monotonic())
            grant_frames = [
                f for f in sink.frames
                if f["type"] in (protocol.MSG_LEASE, protocol.MSG_LEASE_BATCH)
            ]
            assert any(
                f["type"] == protocol.MSG_LEASE_BATCH for f in grant_frames
            )
            assert len(worker.leases) == 4
            # Revoke one batched lease: two-phase — nothing requeues
            # until the worker confirms with MSG_REVOKED.
            lease = list(worker.leases.values())[-1]
            lease.revoking = True
            assert not coord._queue
            coord._handle_message(
                sink, worker,
                {"type": protocol.MSG_REVOKED, "lease": lease.lease_id},
                time.monotonic(),
            )
            assert len(worker.leases) == 3
            assert len(coord._queue) == 1
            assert coord._queue[0].key == lease.cell.key
        finally:
            coord.close()

    def test_placement_prefers_fast_worker_for_head_cell(self):
        """Longest-first queue + fastest-first ranking = longest cell on
        the fastest host."""
        coord = ClusterCoordinator(
            "inproc://t-placement", dispatch_fast=True, prefetch=1
        )
        slow, fast = _FrameSink(), _FrameSink()
        w_slow = _Remote(name="slow", conn=slow, capacity=1,
                         speed=0.2, speed_samples=3)
        w_fast = _Remote(name="fast", conn=fast, capacity=1,
                         speed=5.0, speed_samples=3)
        coord._workers = {"slow": w_slow, "fast": w_fast}
        cells = [_Cell(key=s.key(), spec=s)
                 for s in (_spec(v) for v in range(2))]
        coord._queue = deque(cells)  # head = longest (engine pre-orders)
        coord._unresolved = {c.key for c in cells}
        coord._cells = {c.key: c for c in cells}
        coord._report = ExecuteReport()
        try:
            coord._grant(time.monotonic())
            head_key = cells[0].key
            fast_leases = [f for f in fast.frames
                           if f["type"] == protocol.MSG_LEASE]
            assert fast_leases and fast_leases[0]["key"] == head_key
            assert all(
                f["key"] != head_key for f in slow.frames
                if f.get("type") == protocol.MSG_LEASE
            )
        finally:
            coord.close()

    def test_leased_index_tracks_grant_and_result(self):
        """Satellite: expiry rescans walk only workers holding leases."""
        coord = ClusterCoordinator("inproc://t-leased-index")
        sink = _FrameSink()
        worker = _Remote(name="w0", conn=sink)
        cell = _Cell(key="k", spec=_spec(0))
        lease = _Lease(lease_id="L1", cell=cell, worker="w0", granted=0.0)
        try:
            assert coord._leased == set()
            coord._lease_added(worker, lease)
            assert coord._leased == {"w0"}
            assert coord._inflight == {"k": 1}
            del worker.leases[lease.lease_id]
            coord._lease_removed(worker, lease)
            assert coord._leased == set()
            assert coord._inflight == {}
            assert coord._held_count == 0
        finally:
            coord.close()


# -- decode-failure retry path -----------------------------------------
class TestDecodeFailureRetry:
    def test_unknown_base_result_reships_bases(self):
        """A worker that reports kind="decode" gets every base re-shipped
        on the retry instead of a permanently poisoned session."""
        coord = ClusterCoordinator("inproc://t-decode-retry")
        sink = _FrameSink()
        worker = _Remote(name="w0", conn=sink)
        worker.bases_sent.add("some-base")
        coord._workers["w0"] = worker
        spec = _spec(0)
        cell = _Cell(key=spec.key(), spec=spec)
        lease = _Lease(lease_id="L1", cell=cell, worker="w0", granted=0.0)
        coord._lease_added(worker, lease)
        coord._report = ExecuteReport()
        coord._unresolved = {cell.key}
        coord._cells = {cell.key: cell}
        coord._queue = deque()
        coord._on_resolved = None
        try:
            coord._handle_result(worker, {
                "lease": "L1", "key": cell.key, "ok": False,
                "kind": "decode",
                "payload": {"type": "SpecDeltaError", "message": "x"},
                "wall": 0.0,
            })
            assert worker.bases_sent == set()  # re-ship on retry
            assert cell.key in coord._unresolved  # not resolved: retrying
            assert len(coord._queue) == 1  # requeued with backoff
        finally:
            coord.close()


# -- engine bit-identity: fast vs legacy across every path -------------
class TestEngineBitIdentity:
    def _run(self, monkeypatch, fast: bool, tmp_path, **kw):
        monkeypatch.setenv("REPRO_DISPATCH_FAST", "1" if fast else "0")
        runner = SweepRunner(
            use_cache=False, progress=False, **kw
        )
        specs = [_spec(v, pad="y" * 40) for v in range(10)]
        try:
            return runner.run(specs)
        finally:
            runner.close()

    def test_pool_fast_vs_legacy_bit_identical(self, monkeypatch, tmp_path):
        fast = self._run(monkeypatch, True, tmp_path, jobs=2)
        legacy = self._run(monkeypatch, False, tmp_path, jobs=2)
        inline = self._run(monkeypatch, True, tmp_path, jobs=1)
        assert fast == legacy == inline
        assert [row["value"] for row in fast] == [float(v) for v in range(10)]

    def test_cluster_fast_vs_legacy_bit_identical(self, monkeypatch,
                                                  tmp_path):
        fast = self._run(monkeypatch, True, tmp_path, jobs=2,
                         cluster="inproc")
        legacy = self._run(monkeypatch, False, tmp_path, jobs=2,
                           cluster="inproc")
        inline = self._run(monkeypatch, True, tmp_path, jobs=1)
        assert fast == legacy == inline

    def test_pool_ships_deltas(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_FAST", "1")
        tele = Telemetry(enabled=True)
        runner = SweepRunner(
            jobs=2, use_cache=False, progress=False, telemetry=tele
        )
        specs = [_spec(v, pad="z" * 40) for v in range(8)]
        try:
            rows = runner.run(specs)
        finally:
            runner.close()
        assert [r["value"] for r in rows] == [float(v) for v in range(8)]
        assert _metric(tele, "dispatch_deltas_total") > 0
        assert _metric(tele, "dispatch_bytes_saved_total") > 0
