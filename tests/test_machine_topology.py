"""Tests for cores, clusters and machine topology."""

import pytest

from repro.errors import TopologyError
from repro.machine.cluster import ClusterSpec, divisor_widths
from repro.machine.core import CoreSpec
from repro.machine.presets import haswell16, haswell_node, jetson_tx2, symmetric_machine
from repro.machine.topology import ExecutionPlace, Machine


class TestCoreSpec:
    def test_valid(self):
        core = CoreSpec(0, "c", 2.0, 64.0)
        assert core.base_speed == 2.0

    def test_invalid_speed(self):
        with pytest.raises(Exception):
            CoreSpec(0, "c", 0.0, 64.0)

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            CoreSpec(-1, "c", 1.0, 64.0)


class TestClusterSpec:
    def test_divisor_widths(self):
        assert divisor_widths(4) == (1, 2, 4)
        assert divisor_widths(10) == (1, 2, 5, 10)
        assert divisor_widths(1) == (1,)

    def test_divisor_widths_invalid(self):
        with pytest.raises(ValueError):
            divisor_widths(0)

    def test_core_ids(self):
        c = ClusterSpec("a57", 2, 4, 2048.0, "dram")
        assert c.core_ids == (2, 3, 4, 5)

    def test_leaders_for_width(self):
        c = ClusterSpec("a57", 2, 4, 2048.0, "dram")
        assert c.leaders_for_width(1) == (2, 3, 4, 5)
        assert c.leaders_for_width(2) == (2, 4)
        assert c.leaders_for_width(4) == (2,)

    def test_leaders_for_bad_width(self):
        c = ClusterSpec("a57", 2, 4, 2048.0, "dram")
        with pytest.raises(ValueError):
            c.leaders_for_width(3)


class TestMachineValidation:
    def test_gap_in_clusters_rejected(self):
        clusters = [ClusterSpec("a", 0, 2, 10, "m"), ClusterSpec("b", 3, 2, 10, "m")]
        cores = [CoreSpec(i, "a" if i < 2 else "b", 1.0, 32.0) for i in range(5)]
        with pytest.raises(TopologyError):
            Machine(clusters, cores)

    def test_core_count_mismatch_rejected(self):
        clusters = [ClusterSpec("a", 0, 2, 10, "m")]
        cores = [CoreSpec(0, "a", 1.0, 32.0)]
        with pytest.raises(TopologyError):
            Machine(clusters, cores)

    def test_duplicate_cluster_names_rejected(self):
        clusters = [ClusterSpec("a", 0, 1, 10, "m"), ClusterSpec("a", 1, 1, 10, "m")]
        cores = [CoreSpec(0, "a", 1.0, 32.0), CoreSpec(1, "a", 1.0, 32.0)]
        with pytest.raises(TopologyError):
            Machine(clusters, cores)

    def test_wrong_core_cluster_name_rejected(self):
        clusters = [ClusterSpec("a", 0, 1, 10, "m")]
        cores = [CoreSpec(0, "b", 1.0, 32.0)]
        with pytest.raises(TopologyError):
            Machine(clusters, cores)

    def test_unknown_bandwidth_domain_rejected(self):
        clusters = [ClusterSpec("a", 0, 1, 10, "m")]
        cores = [CoreSpec(0, "a", 1.0, 32.0)]
        with pytest.raises(TopologyError):
            Machine(clusters, cores, memory_bandwidth={"nope": 1.0})


class TestTx2Places:
    def test_place_enumeration_matches_paper(self, tx2):
        # Denver: (0,1) (1,1) (0,2); A57: (2..5,1) (2,2) (4,2) (2,4).
        expected = {
            (0, 1), (1, 1), (0, 2),
            (2, 1), (3, 1), (4, 1), (5, 1),
            (2, 2), (4, 2), (2, 4),
        }
        assert {(p.leader, p.width) for p in tx2.places} == expected

    def test_place_validity(self, tx2):
        assert tx2.is_valid_place(ExecutionPlace(2, 4))
        assert not tx2.is_valid_place(ExecutionPlace(3, 2))  # misaligned
        assert not tx2.is_valid_place(ExecutionPlace(0, 4))  # too wide
        assert not tx2.is_valid_place(ExecutionPlace(4, 4))  # spills out
        assert not tx2.is_valid_place(ExecutionPlace(6, 1))  # no such core

    def test_validate_place_raises(self, tx2):
        with pytest.raises(TopologyError):
            tx2.validate_place(ExecutionPlace(3, 2))

    def test_place_cores(self, tx2):
        assert tx2.place_cores(ExecutionPlace(2, 4)) == (2, 3, 4, 5)

    def test_local_place_snaps_to_alignment(self, tx2):
        assert tx2.local_place_for(3, 2) == ExecutionPlace(2, 2)
        assert tx2.local_place_for(5, 4) == ExecutionPlace(2, 4)
        assert tx2.local_place_for(1, 2) == ExecutionPlace(0, 2)

    def test_local_place_illegal_width(self, tx2):
        with pytest.raises(TopologyError):
            tx2.local_place_for(0, 4)  # Denver cluster has 2 cores

    def test_widths_at(self, tx2):
        assert tx2.widths_at(0) == (1, 2)
        assert tx2.widths_at(4) == (1, 2, 4)

    def test_cluster_and_domain_lookup(self, tx2):
        assert tx2.cluster_of(1).name == "denver"
        assert tx2.cluster_of(5).name == "a57"
        assert tx2.domain_of(0) == tx2.domain_of(5) == "dram"

    def test_places_led_by(self, tx2):
        assert {p.width for p in tx2.places_led_by(2)} == {1, 2, 4}
        assert {p.width for p in tx2.places_led_by(3)} == {1}

    def test_max_base_speed(self, tx2):
        assert tx2.max_base_speed() == 2.0


class TestPresets:
    def test_haswell16_symmetric(self):
        m = haswell16()
        assert m.num_cores == 16
        assert len(m.clusters) == 2
        assert m.cluster_of(0).memory_domain != m.cluster_of(8).memory_domain
        speeds = {c.base_speed for c in m.cores}
        assert len(speeds) == 1

    def test_haswell_node_widths(self):
        m = haswell_node()
        assert m.num_cores == 20
        assert m.widths_at(0) == (1, 2, 5, 10)

    def test_symmetric_machine_validation(self):
        with pytest.raises(ValueError):
            symmetric_machine(0, 4)

    def test_place_str(self):
        assert str(ExecutionPlace(2, 4)) == "(C2,4)"
