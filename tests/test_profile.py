"""The profiling subsystem: phase accounting, reports, CLI smoke."""

import json

from repro.profile import Profiler
from repro.profile.cli import main as profile_main
from repro.profile.flamegraph import validate_collapsed
from repro.profile.phases import (
    PhaseTimer,
    active_phases,
    phase_accounting,
    phase_scope,
)


class TestPhaseTimer:
    def test_inactive_scope_is_free_noop(self):
        assert active_phases() is None
        with phase_scope("sim-loop"):
            assert active_phases() is None

    def test_nested_phases_attribute_to_innermost(self):
        timer = PhaseTimer()
        with phase_accounting(timer):
            with phase_scope("sim-loop"):
                with phase_scope("policy-search"):
                    pass
        breakdown = timer.breakdown(wall=1.0)
        phases = breakdown["phases"]
        assert phases["policy-search"]["enters"] == 1
        assert phases["sim-loop"]["enters"] == 1
        # Inner time is attributed to the inner phase, not double-counted.
        assert phases["sim-loop"]["seconds"] >= 0.0

    def test_ad_hoc_phase_gets_own_bucket_after_canonical(self):
        timer = PhaseTimer()
        with phase_accounting(timer):
            with phase_scope("sim-loop"):
                pass
            with phase_scope("my-custom-phase"):
                pass
        names = list(timer.breakdown(wall=1.0)["phases"])
        assert names.index("sim-loop") < names.index("my-custom-phase")


class TestProfiler:
    def test_run_returns_result_and_phase_report(self):
        def body():
            with phase_scope("metrics"):
                return sum(range(1000))

        result, report = Profiler(cprofile=False).run(body, label="unit")
        assert result == sum(range(1000))
        assert report.label == "unit"
        assert report.wall > 0
        assert "metrics" in report.breakdown["phases"]
        assert report.collapsed == []  # no cProfile -> no flamegraph

    def test_cprofile_produces_valid_collapsed_stacks(self):
        def body():
            return [i * i for i in range(2000)]

        _result, report = Profiler(cprofile=True).run(body, label="unit")
        assert report.top, "expected per-function hotspots"
        assert report.collapsed
        validate_collapsed(report.collapsed)

    def test_write_emits_artifacts(self, tmp_path):
        _result, report = Profiler(cprofile=True).run(
            lambda: sum(range(100)), label="unit"
        )
        written = report.write(tmp_path / "out")
        assert set(written) == {"phases", "collapsed", "pstats"}
        payload = json.loads(open(written["phases"]).read())
        assert payload["label"] == "unit"
        assert "phases" in payload["breakdown"]


class TestCli:
    def test_micro_smoke_exits_zero_with_valid_artifacts(self, tmp_path):
        out = tmp_path / "prof"
        code = profile_main(
            ["micro", "--tasks", "40", "--out", str(out), "--top", "3"]
        )
        assert code == 0
        assert (out / "phases.json").exists()
        collapsed = (out / "profile.collapsed").read_text().splitlines()
        validate_collapsed(collapsed)
        payload = json.loads((out / "phases.json").read_text())
        phases = payload["breakdown"]["phases"]
        assert phases["sim-loop"]["seconds"] > 0

    def test_micro_no_cprofile(self, tmp_path):
        out = tmp_path / "prof"
        code = profile_main(
            ["micro", "--tasks", "40", "--no-cprofile", "--out", str(out)]
        )
        assert code == 0
        assert (out / "phases.json").exists()
        assert not (out / "profile.collapsed").exists()
