"""Comparative behaviour tests across the scheduler family."""

import pytest

from repro.apps.heat import HeatConfig, build_heat_graph_builder
from repro.distributed.cluster_runtime import DistributedRuntime
from repro.interference.composite import CompositeScenario
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.presets import haswell_node
from repro.session import quick_run


class TestDheftBaseline:
    def test_dheft_beats_rws_under_interference(self):
        """The related-work baseline at least avoids perturbed cores once
        its per-core means are trained."""
        thr = {}
        for sched in ("rws", "dheft"):
            thr[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=400,
                scenario=CorunnerInterference.matmul_chain([0]),
            ).throughput
        assert thr["dheft"] > thr["rws"]

    def test_dam_c_beats_dheft(self):
        """The paper's scheduler beats dHEFT: moldability plus
        locality-preserving low-priority handling."""
        thr = {}
        for sched in ("dheft", "dam-c"):
            thr[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=4,
                total_tasks=400,
                scenario=CorunnerInterference.matmul_chain([0]),
            ).throughput
        assert thr["dam-c"] > thr["dheft"]


class TestCompositeScenarios:
    def test_dvfs_plus_corunner(self):
        """Both interference sources at once: DAM-C still dominates RWS."""
        def scenario():
            return CompositeScenario([
                DvfsInterference(wave=PeriodicSquareWave(half_period=0.2)),
                CorunnerInterference.matmul_chain([0]),
            ])

        thr = {}
        for sched in ("rws", "dam-c"):
            thr[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=3,
                total_tasks=900, scenario=scenario(),
            ).throughput
        assert thr["dam-c"] > 1.3 * thr["rws"]

    def test_distributed_node_with_dvfs(self):
        """A DVFS governor on one node of the cluster run is handled."""
        config = HeatConfig(nodes=2, iterations=8)
        runtime = DistributedRuntime(
            [haswell_node() for _ in range(2)],
            "dam-c",
            build_heat_graph_builder(config),
            scenarios={
                0: DvfsInterference(
                    cores=list(range(5)),
                    wave=PeriodicSquareWave(half_period=0.1),
                )
            },
        )
        result = runtime.run()
        assert result.tasks_completed == 2 * config.iterations * (
            config.partitions + 1
        )


class TestNoInterferenceParity:
    def test_da_family_close_to_fa_without_interference(self):
        """On a quiet machine the dynamic model converges to the static
        truth: DA's placement matches FA's fast-core preference."""
        thr = {}
        for sched in ("fa", "da"):
            thr[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=300,
            ).throughput
        assert thr["da"] / thr["fa"] > 0.85
