"""Tests for interference trace recording and faithful replay."""

import pytest

from repro.errors import ConfigurationError
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.interference.traces import TraceRecorder, TraceScenario
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


def record_scenario(scenario, until=3.0):
    """Run ``scenario`` against a bare speed model, recording its actions."""
    env = Environment()
    machine = jetson_tx2()
    speed = SpeedModel(env, machine)
    recorder = TraceRecorder()
    recorder.attach(env, speed)
    scenario.install(env, speed, machine)
    env.run(until=until)
    return recorder


class TestRecorder:
    def test_records_corunner_window(self):
        recorder = record_scenario(
            CorunnerInterference([0], memory_demand=1.0, start=1.0, end=2.0)
        )
        trace = recorder.trace()
        kinds = [a.to_dict()["kind"] for a in trace.actions]
        # share on + demand on at t=1, share off + demand off at t=2.
        assert kinds.count("cpu_share") == 2
        assert kinds.count("demand") == 2
        assert [a.time for a in trace.actions] == [1.0, 1.0, 2.0, 2.0]

    def test_records_dvfs_toggles(self):
        wave = PeriodicSquareWave(1.0, 0.5, half_period=1.0)
        recorder = record_scenario(
            DvfsInterference(cores=[0, 1], wave=wave), until=2.5
        )
        freq_actions = [
            a for a in recorder.trace().actions
            if a.to_dict()["kind"] == "freq_scale"
        ]
        assert len(freq_actions) >= 2
        assert freq_actions[0].scale == 1.0
        assert freq_actions[1].scale == 0.5

    def test_double_attach_rejected(self):
        recorder = TraceRecorder()
        env = Environment()
        speed = SpeedModel(env, jetson_tx2())
        recorder.attach(env, speed)
        with pytest.raises(ConfigurationError):
            recorder.attach(env, speed)


class TestReplayFidelity:
    def test_replay_reproduces_state_trajectory(self):
        """Record a composite scenario, replay it, and compare the speed
        model state at several probe times."""
        def scenario():
            return CorunnerInterference(
                [0], cpu_share=0.4, memory_demand=2.0, start=0.5, end=2.5
            )

        recorder = record_scenario(scenario(), until=4.0)
        trace = recorder.trace()

        def probe(install):
            env = Environment()
            machine = jetson_tx2()
            speed = SpeedModel(env, machine)
            install(env, speed, machine)
            states = []
            for t in (0.25, 1.0, 3.0):
                env.run(until=t)
                states.append(
                    (speed.cpu_share(0), speed.external_demand("dram"))
                )
            return states

        original = probe(lambda e, s, m: scenario().install(e, s, m))
        replayed = probe(lambda e, s, m: TraceScenario(trace).install(e, s, m))
        assert original == replayed

    def test_serialized_roundtrip_replays(self):
        from repro.interference.traces import InterferenceTrace

        recorder = record_scenario(
            CorunnerInterference([2, 3], start=1.0, end=2.0)
        )
        rebuilt = InterferenceTrace.from_dicts(recorder.trace().to_dicts())
        env = Environment()
        machine = jetson_tx2()
        speed = SpeedModel(env, machine)
        TraceScenario(rebuilt).install(env, speed, machine)
        env.run(until=1.5)
        assert speed.cpu_share(2) == 0.5
        env.run(until=2.5)
        assert speed.cpu_share(2) == 1.0
