"""Tests for the sweep engine's fault tolerance.

Chaos executors registered here are inherited by the pool's worker
processes (the pool forks), which lets these tests inject real worker
crashes (``os._exit``), hangs (``time.sleep``) and deterministic
exceptions, then assert the supervisor's retry/timeout/error-capture and
checkpoint/resume behavior from the outside.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments import runner as cli
from repro.experiments.common import ExperimentSettings
from repro.sweep import (
    ERROR_KEY,
    RunSpec,
    SweepRunner,
    is_error_result,
    pop_stats,
)
from repro.sweep.registry import executor


@executor("chaos_crash_once")
def _crash_once(spec):
    """Dies hard on the first attempt, succeeds on retry."""
    flag = spec.params["flag"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(1)
    return {"value": float(spec.params["value"])}


@executor("chaos_crash_always")
def _crash_always(spec):
    os._exit(1)


@executor("chaos_hang")
def _hang(spec):
    time.sleep(spec.params.get("sleep", 60.0))
    return {"value": 0.0}


@executor("chaos_raise")
def _raise(spec):
    raise ValueError(f"bad parameter {spec.params['value']}")


@executor("chaos_count")
def _count(spec):
    """Appends one line per execution — observable exactly-once evidence."""
    with open(spec.params["counter"], "a") as fh:
        fh.write("x\n")
    return {"value": float(spec.params["value"])}


def _executions(counter) -> int:
    try:
        with open(counter) as fh:
            return len(fh.readlines())
    except OSError:
        return 0


def _spec(kind, metrics=("value",), **params):
    return RunSpec(kind=kind, params=params, metrics=metrics)


def _runner(tmp_path, **kw):
    kw.setdefault("use_cache", False)
    kw.setdefault("progress", False)
    kw.setdefault("retry_backoff", 0.01)
    return SweepRunner(cache_dir=tmp_path / "cache", **kw)


class TestWorkerCrash:
    def test_crash_is_retried_and_succeeds(self, tmp_path):
        pop_stats()
        runner = _runner(tmp_path, jobs=2)
        specs = [
            _spec("chaos_crash_once", flag=str(tmp_path / "flag"), value=7),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=2),
        ]
        rows = runner.run(specs)
        assert rows[0] == {"value": 7.0}
        assert rows[1] == {"value": 1.0}
        assert rows[2] == {"value": 2.0}
        (stats,) = pop_stats()
        assert stats.retries == 1
        assert stats.failures == 0

    def test_crash_budget_exhaustion_becomes_error_result(self, tmp_path):
        pop_stats()
        runner = _runner(tmp_path, jobs=2, max_attempts=2)
        specs = [
            _spec("chaos_crash_always", value=0),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
        ]
        rows = runner.run(specs)
        assert is_error_result(rows[0])
        err = rows[0][ERROR_KEY]
        assert err["kind"] == "crash"
        assert err["attempts"] == 2
        assert "died" in err["message"]
        # The healthy spec in the same batch still completed.
        assert rows[1] == {"value": 1.0}
        (stats,) = pop_stats()
        assert stats.failures == 1
        assert stats.retries == 1  # one re-execution before giving up

    def test_error_results_are_not_cached(self, tmp_path):
        flag = tmp_path / "flag"
        runner = _runner(tmp_path, jobs=2, max_attempts=1, use_cache=True)
        specs = [
            _spec("chaos_crash_once", flag=str(flag), value=3),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
        ]
        rows = runner.run(specs)
        assert is_error_result(rows[0])  # max_attempts=1: no retry
        # A fresh sweep over the same specs re-executes the failed cell —
        # the flag file now exists, so this time it succeeds.
        rows = _runner(
            tmp_path, jobs=2, max_attempts=1, use_cache=True
        ).run(specs)
        assert rows[0] == {"value": 3.0}


class TestTimeout:
    def test_hung_run_is_killed_and_reported(self, tmp_path):
        pop_stats()
        runner = _runner(tmp_path, jobs=1, timeout=0.4, max_attempts=1)
        start = time.perf_counter()
        (row,) = runner.run([_spec("chaos_hang", sleep=60.0)])
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # killed, not slept out
        assert is_error_result(row)
        err = row[ERROR_KEY]
        assert err["kind"] == "timeout"
        assert "0.4" in err["message"]
        (stats,) = pop_stats()
        assert stats.timeouts == 1
        assert stats.failures == 1

    def test_timeout_forces_supervision_even_serially(self, tmp_path):
        # jobs=1 normally runs inline (same process); a timeout cannot be
        # enforced there, so the engine must route through a subprocess.
        runner = _runner(tmp_path, jobs=1, timeout=5.0)
        counter = tmp_path / "c"
        (row,) = runner.run(
            [_spec("chaos_count", counter=str(counter), value=4)]
        )
        assert row == {"value": 4.0}
        assert _executions(counter) == 1

    def test_fast_run_within_timeout_unaffected(self, tmp_path):
        pop_stats()
        runner = _runner(tmp_path, jobs=2, timeout=30.0)
        rows = runner.run([
            _spec("chaos_count", counter=str(tmp_path / "c"), value=v)
            for v in (1, 2, 3)
        ])
        assert [r["value"] for r in rows] == [1.0, 2.0, 3.0]
        (stats,) = pop_stats()
        assert stats.timeouts == 0 and stats.failures == 0


class TestStragglers:
    """Straggler detection vs the run timeout (see repro.telemetry).

    Heartbeats are diagnostic, never disciplinary: an alive-but-slow
    worker is flagged and reported but only the per-run wall-clock
    ``timeout`` ever kills a run, and heartbeats neither extend nor
    shorten that deadline.
    """

    def _telemetry(self, **kw):
        from repro.telemetry import Telemetry

        return Telemetry(label="chaos", enabled=True, **kw)

    def test_slow_run_is_flagged_but_never_killed(self, tmp_path):
        # timeout=2.5 puts the straggler yardstick at 1.25s; the run
        # sleeps past it but finishes well inside the timeout.
        pop_stats()
        tele = self._telemetry()
        runner = _runner(
            tmp_path, jobs=1, timeout=2.5, telemetry=tele
        )
        (row,) = runner.run([_spec("chaos_hang", sleep=1.6)])
        assert row == {"value": 0.0}  # completed, not killed
        (stats,) = pop_stats()
        assert stats.timeouts == 0 and stats.failures == 0
        assert tele.workers.stragglers_flagged >= 1
        snap = tele.registry.snapshot()
        assert snap["sweep_stragglers_total"]["value"] >= 1
        assert snap["sweep_heartbeats_total"]["value"] >= 1
        # The flag was reported on the progress stream, not acted on.
        kinds = [kind for _, kind, _ in tele.progress_emitter.tail(50)]
        assert "straggler" in kinds

    def test_heartbeats_never_extend_the_deadline(self, tmp_path):
        # A hung run keeps heartbeating — proof of life must not win a
        # reprieve from the wall-clock timeout.
        pop_stats()
        tele = self._telemetry(heartbeat_interval=0.05)
        runner = _runner(
            tmp_path, jobs=1, timeout=0.5, max_attempts=1, telemetry=tele
        )
        start = time.perf_counter()
        (row,) = runner.run([_spec("chaos_hang", sleep=60.0)])
        assert time.perf_counter() - start < 10.0
        assert is_error_result(row)
        assert row[ERROR_KEY]["kind"] == "timeout"
        (stats,) = pop_stats()
        assert stats.timeouts == 1
        snap = tele.registry.snapshot()
        assert snap["sweep_heartbeats_total"]["value"] >= 1

    def test_silent_worker_is_not_killed_early(self, tmp_path):
        # No heartbeat ever arrives (interval far beyond the run) — a
        # GIL-bound worker looks exactly like this.  Stale heartbeat age
        # must not shorten the deadline either: the run completes.
        pop_stats()
        tele = self._telemetry(heartbeat_interval=30.0)
        runner = _runner(
            tmp_path, jobs=1, timeout=10.0, telemetry=tele
        )
        (row,) = runner.run([_spec("chaos_hang", sleep=0.8)])
        assert row == {"value": 0.0}
        (stats,) = pop_stats()
        assert stats.timeouts == 0 and stats.failures == 0
        snap = tele.registry.snapshot()
        assert snap["sweep_heartbeats_total"]["value"] == 0

    # -- the same contract for remote (cluster) workers -----------------

    def test_cluster_slow_run_is_flagged_but_never_killed(self, tmp_path):
        # The lease yardstick (lease_timeout/2 = 1.25s) flags the 1.6s
        # run as a straggler, but only lease expiry (2.5s) ever reclaims
        # — the flagged run completes untouched.
        pop_stats()
        tele = self._telemetry()
        runner = _runner(
            tmp_path, jobs=1, cluster="inproc", lease_timeout=2.5,
            telemetry=tele,
        )
        try:
            (row,) = runner.run([_spec("chaos_hang", sleep=1.6)])
        finally:
            runner.close()
        assert row == {"value": 0.0}  # completed, not killed
        (stats,) = pop_stats()
        assert stats.timeouts == 0 and stats.failures == 0
        snap = tele.registry.snapshot()
        assert snap["cluster_stragglers_total"]["value"] >= 1
        assert snap["cluster_leases_expired_total"]["value"] == 0
        assert snap["cluster_leases_reclaimed_total"]["value"] == 0

    def test_cluster_heartbeating_slow_worker_is_not_lost(self):
        # A run three times the liveness budget, but heartbeats keep
        # flowing: proof of life must keep the worker registered —
        # silence, not slowness, is the only death sentence.
        from repro.cluster.coordinator import ClusterCoordinator
        from repro.cluster.worker import start_worker_thread
        from repro.telemetry import Telemetry

        tele = Telemetry(enabled=True)
        coord = ClusterCoordinator(
            "inproc://strag-alive", telemetry=tele,
            liveness_timeout=0.4, retry_backoff=0.05,
        )
        worker = start_worker_thread(
            coord.address, name="slowpoke", heartbeat_interval=0.1
        )
        spec = _spec("chaos_hang", sleep=1.2)
        try:
            report = coord.execute([(spec.key(), spec, 1)])
        finally:
            coord.close()
            worker.stop()
        (outcome,) = report.outcomes.values()
        assert outcome.status == "ok"
        assert outcome.payload == {"value": 0.0}
        snap = tele.registry.snapshot()
        assert snap["cluster_workers_lost_total"]["value"] == 0
        assert snap["cluster_heartbeats_total"]["value"] >= 3

    def test_cluster_silent_worker_is_reclaimed_exactly_once(self, tmp_path):
        # The mirror image: a paused main loop stops the heartbeats, so
        # the worker is lost after the liveness budget, its leases are
        # reclaimed, and a healthy worker finishes the sweep — with
        # every cell still committed exactly once.
        from repro.cluster.chaos import ChaosEvent, WorkerChaos
        from repro.cluster.coordinator import ClusterCoordinator
        from repro.cluster.worker import start_worker_thread
        from repro.telemetry import Telemetry

        tele = Telemetry(enabled=True)
        coord = ClusterCoordinator(
            "inproc://strag-silent", telemetry=tele,
            liveness_timeout=0.4, retry_backoff=0.05, max_attempts=3,
        )
        specs = [
            _spec("chaos_count", counter=str(tmp_path / f"c{v}"), value=v)
            for v in range(4)
        ]
        silent = start_worker_thread(
            coord.address, name="silent", heartbeat_interval=0.1,
            chaos=WorkerChaos(events=[
                ChaosEvent(kind="pause", after_results=0, duration=1.0)
            ]),
        )
        healthy = start_worker_thread(
            coord.address, name="healthy", heartbeat_interval=0.1
        )
        try:
            report = coord.execute([(s.key(), s, 1) for s in specs])
        finally:
            coord.close()
            silent.stop()
            healthy.stop()
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert len(report.outcomes) == 4
        snap = tele.registry.snapshot()
        assert snap["cluster_workers_lost_total"]["value"] >= 1


class TestDeterministicExceptions:
    def test_exception_captured_inline(self, tmp_path):
        pop_stats()
        runner = _runner(tmp_path, jobs=1)
        rows = runner.run([
            _spec("chaos_raise", value=9),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
        ])
        assert is_error_result(rows[0])
        err = rows[0][ERROR_KEY]
        assert err["kind"] == "exception"
        assert err["type"] == "ValueError"
        assert "bad parameter 9" in err["message"]
        assert rows[1] == {"value": 1.0}
        (stats,) = pop_stats()
        assert stats.failures == 1
        assert stats.retries == 0  # deterministic: retrying is pointless

    def test_exception_captured_in_pool(self, tmp_path):
        runner = _runner(tmp_path, jobs=2)
        rows = runner.run([
            _spec("chaos_raise", value=5),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
        ])
        assert is_error_result(rows[0])
        assert rows[0][ERROR_KEY]["type"] == "ValueError"
        assert rows[1] == {"value": 1.0}

    def test_exception_not_written_to_cache(self, tmp_path):
        counter = tmp_path / "c"
        specs = [_spec("chaos_raise", value=1),
                 _spec("chaos_count", counter=str(counter), value=2)]
        for _ in range(2):
            rows = _runner(tmp_path, jobs=1, use_cache=True).run(specs)
            assert is_error_result(rows[0])
        # The good spec was cached after sweep 1; the bad one re-raised
        # (i.e. re-executed) rather than serving a cached error.
        assert _executions(counter) == 1


class TestCheckpointResume:
    def _specs(self, counter, n=3):
        return [
            _spec("chaos_count", counter=str(counter), value=v)
            for v in range(n)
        ]

    def test_resume_replays_without_recompute(self, tmp_path):
        counter = tmp_path / "c"
        pop_stats()
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        assert first.run(self._specs(counter)) == [
            {"value": 0.0}, {"value": 1.0}, {"value": 2.0},
        ]
        assert _executions(counter) == 3
        second = _runner(tmp_path, jobs=1, resume=True, label="fig")
        assert second.run(self._specs(counter)) == [
            {"value": 0.0}, {"value": 1.0}, {"value": 2.0},
        ]
        assert _executions(counter) == 3  # nothing recomputed
        stats = pop_stats()
        assert stats[-1].resumed == 3
        assert stats[-1].executed == 0

    def test_partial_checkpoint_resumes_the_remainder(self, tmp_path):
        counter = tmp_path / "c"
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        first.run(self._specs(counter, n=2))
        second = _runner(tmp_path, jobs=1, resume=True, label="fig")
        second.run(self._specs(counter, n=4))
        # 2 executed by the first sweep + only the 2 new ones after.
        assert _executions(counter) == 4

    def test_torn_checkpoint_line_is_tolerated(self, tmp_path):
        counter = tmp_path / "c"
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        first.run(self._specs(counter))
        path = tmp_path / "cache" / "checkpoints" / "fig.jsonl"
        with open(path, "a") as fh:
            fh.write('{"key": "abc", "metr')  # killed mid-write
        second = _runner(tmp_path, jobs=1, resume=True, label="fig")
        second.run(self._specs(counter))
        assert _executions(counter) == 3

    def test_non_resume_sweep_truncates_checkpoint(self, tmp_path):
        counter = tmp_path / "c"
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        first.run(self._specs(counter, n=3))
        fresh = _runner(tmp_path, jobs=1, use_cache=True, label="fig")
        fresh.run([_spec("chaos_count", counter=str(counter), value=99)])
        path = tmp_path / "cache" / "checkpoints" / "fig.jsonl"
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 1  # the old 3 entries are gone

    def test_stale_checkpoint_lines_are_skipped_and_counted(self, tmp_path):
        # A line whose recorded identity no longer hashes back to its
        # key (here: a tampered version, as after an engine upgrade) is
        # skipped with a log, counted in ``resumed_stale``, and its cell
        # recomputed; fresh lines still replay.
        counter = tmp_path / "c"
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        first.run(self._specs(counter))
        assert _executions(counter) == 3
        path = tmp_path / "cache" / "checkpoints" / "fig.jsonl"
        entries = [
            json.loads(line) for line in path.read_text().splitlines()
            if line.strip()
        ]
        entries[1]["identity"]["version"] = "0.0.0-stale"
        with open(path, "w") as fh:
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
        pop_stats()
        second = _runner(tmp_path, jobs=1, resume=True, label="fig")
        rows = second.run(self._specs(counter))
        assert rows == [{"value": 0.0}, {"value": 1.0}, {"value": 2.0}]
        assert _executions(counter) == 4  # exactly the stale cell re-ran
        (stats,) = pop_stats()
        assert stats.resumed_stale == 1
        assert stats.resumed == 2
        assert stats.executed == 1

    def test_errors_never_enter_the_checkpoint(self, tmp_path):
        first = _runner(tmp_path, jobs=1, resume=True, label="fig")
        (row,) = first.run([_spec("chaos_raise", value=1)])
        assert is_error_result(row)
        path = tmp_path / "cache" / "checkpoints" / "fig.jsonl"
        assert not path.exists() or not path.read_text().strip()


class TestManifest:
    def test_manifest_records_attempts_and_errors(self, tmp_path):
        runner = _runner(
            tmp_path, jobs=2, max_attempts=2,
            manifest_dir=tmp_path / "out",
        )
        specs = [
            _spec("chaos_crash_always", value=0),
            _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
        ]
        runner.run(specs)
        with open(tmp_path / "out" / "manifest.json") as fh:
            manifest = json.load(fh)
        assert manifest["stats"]["failures"] == 1
        assert manifest["stats"]["retries"] == 1
        by_kind = {e["kind"]: e for e in manifest["runs"]}
        bad = by_kind["chaos_crash_always"]
        assert bad["attempts"] == 2
        assert bad["error"]["kind"] == "crash"
        good = by_kind["chaos_count"]
        assert "error" not in good
        assert good["attempts"] == 1


class TestAdaptiveWithFailures:
    def test_broken_cell_aggregates_to_its_error(self, tmp_path):
        from repro.sweep import AdaptivePolicy

        runner = _runner(tmp_path, jobs=1)
        policy = AdaptivePolicy(ci=0.1, min_seeds=2, max_seeds=4)
        rows = runner.run_adaptive(
            [_spec("chaos_raise", value=1),
             _spec("chaos_count", counter=str(tmp_path / "c"), value=2)],
            policy,
        )
        assert is_error_result(rows[0])
        assert rows[1]["value"] == 2.0


class TestValidation:
    def test_runner_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, timeout=0.0, cache_dir=tmp_path)
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, max_attempts=0, cache_dir=tmp_path)
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, retry_backoff=-1.0, cache_dir=tmp_path)

    def test_settings_reject_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(run_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(max_attempts=0)


class TestCliExitCodes:
    def test_user_error_exits_2(self, capsys):
        assert cli.main(["fig4", "--scale", "5"]) == cli.EXIT_USER_ERROR
        assert "error:" in capsys.readouterr().err

    def test_bad_timeout_exits_2(self, capsys):
        assert (
            cli.main(["fig4", "--run-timeout", "-1"]) == cli.EXIT_USER_ERROR
        )
        assert "run_timeout" in capsys.readouterr().err

    def test_internal_error_exits_3(self, capsys, monkeypatch):
        def boom(settings):
            raise RuntimeError("synthetic harness bug")

        monkeypatch.setitem(cli._HARNESSES, "fig4", boom)
        assert cli.main(["fig4", "--no-cache"]) == cli.EXIT_INTERNAL_ERROR
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "synthetic harness bug" in err

    def test_harness_config_error_exits_2(self, capsys, monkeypatch):
        def reject(settings):
            raise ConfigurationError("flag combination unsupported")

        monkeypatch.setitem(cli._HARNESSES, "fig4", reject)
        assert cli.main(["fig4", "--no-cache"]) == cli.EXIT_USER_ERROR
        assert "flag combination unsupported" in capsys.readouterr().err

    def test_bad_cluster_address_exits_2(self, capsys):
        assert (
            cli.main(["fig4", "--cluster", "bogus"]) == cli.EXIT_USER_ERROR
        )
        assert "cluster" in capsys.readouterr().err

    def test_exhausted_retry_budget_exits_4(self, capsys, monkeypatch,
                                            tmp_path):
        class _Result:
            def report(self):
                return "[fake harness]"

        def harness(settings):
            runner = SweepRunner(
                jobs=2, use_cache=False, progress=False,
                max_attempts=1, retry_backoff=0.01,
                cache_dir=tmp_path / "cache",
            )
            # Two specs so the supervised pool engages (a lone spec runs
            # inline, where a crash executor would take the tests down).
            runner.run([
                _spec("chaos_crash_always", value=0),
                _spec("chaos_count", counter=str(tmp_path / "c"), value=1),
            ])
            return _Result()

        monkeypatch.setitem(cli._HARNESSES, "fig4", harness)
        assert cli.main(["fig4", "--no-cache"]) == cli.EXIT_EXHAUSTED == 4
        captured = capsys.readouterr()
        assert "exhausted their retry budget" in captured.err
        assert "results are incomplete" in captured.err
        # The per-harness summary line names the count too.
        assert "1 exhausted their retry budget" in captured.out
