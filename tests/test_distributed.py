"""Tests for the fabric, SimMPI, and the multi-node runtime."""

import pytest

from repro.distributed.cluster_runtime import DistributedRuntime
from repro.distributed.message import Message
from repro.distributed.mpi import CommTaskBuilder, SimMpi
from repro.distributed.network import Fabric, MessageFaultModel
from repro.errors import (
    CommunicationError,
    CommunicationTimeout,
    ConfigurationError,
    MessageDropped,
)
from repro.graph.dag import TaskGraph
from repro.graph.task import Priority
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.interconnect import Interconnect
from repro.machine.presets import symmetric_machine
from repro.sim.environment import Environment


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(-1, 0, 0, 10.0)
        with pytest.raises(ValueError):
            Message(0, 0, 0, -1.0)

    def test_ids_unique(self):
        a = Message(0, 1, 0, 1.0)
        b = Message(0, 1, 0, 1.0)
        assert a.msg_id != b.msg_id


class TestFabric:
    def test_send_recv_roundtrip(self):
        env = Environment()
        fabric = Fabric(env, 2, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e6))
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=7)
            got.append((env.now, msg.payload))

        env.process(receiver())
        fabric.send(Message(0, 1, 7, size_bytes=1e3, payload="hello"))
        env.run()
        # wire = 1e-3 + 1e3/1e6 = 2e-3
        assert got == [(pytest.approx(2e-3), "hello")]
        assert fabric.messages_delivered == 1
        assert fabric.bytes_delivered == 1e3

    def test_same_link_serializes(self):
        env = Environment()
        fabric = Fabric(env, 2, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e9))
        times = []

        def receiver():
            for _ in range(2):
                yield fabric.recv(1, src=0, tag=0)
                times.append(env.now)

        env.process(receiver())
        fabric.send(Message(0, 1, 0, 0.0))
        fabric.send(Message(0, 1, 0, 0.0))
        env.run()
        assert times[0] == pytest.approx(1e-3)
        assert times[1] == pytest.approx(2e-3)

    def test_different_links_parallel(self):
        env = Environment()
        fabric = Fabric(env, 3, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e9))
        times = {}

        def receiver(rank):
            yield fabric.recv(rank, src=0, tag=0)
            times[rank] = env.now

        env.process(receiver(1))
        env.process(receiver(2))
        fabric.send(Message(0, 1, 0, 0.0))
        fabric.send(Message(0, 2, 0, 0.0))
        env.run()
        assert times[1] == pytest.approx(1e-3)
        assert times[2] == pytest.approx(1e-3)

    def test_local_delivery_immediate(self):
        env = Environment()
        fabric = Fabric(env, 2)
        done = fabric.send(Message(0, 0, 1, 100.0))
        assert done.triggered

    def test_tag_matching(self):
        env = Environment()
        fabric = Fabric(env, 2)
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=5)
            got.append(msg.tag)

        env.process(receiver())
        fabric.send(Message(0, 1, 9, 0.0))   # wrong tag: buffered, ignored
        fabric.send(Message(0, 1, 5, 0.0))
        env.run()
        assert got == [5]

    def test_rank_validation(self):
        env = Environment()
        fabric = Fabric(env, 2)
        with pytest.raises(CommunicationError):
            fabric.send(Message(0, 5, 0, 1.0))
        with pytest.raises(CommunicationError):
            Fabric(env, 0)


class TestSimMpi:
    def test_isend_irecv(self):
        env = Environment()
        fabric = Fabric(env, 2)
        mpi0, mpi1 = SimMpi(fabric, 0), SimMpi(fabric, 1)
        assert mpi0.size == 2
        got = []

        def receiver():
            msg = yield mpi1.irecv(src=0, tag=3)
            got.append(msg.payload)

        env.process(receiver())
        mpi0.isend(1, tag=3, size_bytes=8.0, payload=[1, 2])
        env.run()
        assert got == [[1, 2]]


class TestCommTaskBuilder:
    def test_comm_kernel_is_rigid(self):
        env = Environment()
        machine = symmetric_machine(1, 4)
        from repro.machine.speed import SpeedModel
        speed = SpeedModel(env, machine)
        fabric = Fabric(env, 1)
        builder = CommTaskBuilder(env, speed, SimMpi(fabric, 0))
        kernel = builder.comm_kernel("exchange", 1e4)
        assert kernel.parallel_fraction() == 0.0
        assert kernel.seq_work() > 0

    def test_protocol_cost_validation(self):
        env = Environment()
        machine = symmetric_machine(1, 2)
        from repro.machine.speed import SpeedModel
        speed = SpeedModel(env, machine)
        fabric = Fabric(env, 1)
        with pytest.raises(CommunicationError):
            CommTaskBuilder(env, speed, SimMpi(fabric, 0), base_cpu_work=-1)


def _ping_pong_builder(size_bytes=1e3):
    """Two ranks exchange one message via comm tasks, then compute."""

    def builder(handle):
        graph = TaskGraph(f"pp-{handle.rank}")
        peer = 1 - handle.rank
        op = handle.comm.exchange_op(
            peer, send_tag=handle.rank, recv_tag=peer, size_bytes=size_bytes
        )
        kernel = handle.comm.comm_kernel("exchange", size_bytes)
        comm_task = graph.add_task(
            kernel, priority=Priority.HIGH, metadata={"comm_op": op}
        )
        graph.add_task(
            FixedWorkKernel("compute", work=1e-3), deps=[comm_task]
        )
        return graph

    return builder


class TestDistributedRuntime:
    def test_ping_pong_completes(self):
        machines = [symmetric_machine(1, 4, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines, "dam-c", _ping_pong_builder()
        )
        result = runtime.run()
        assert result.tasks_completed == 4
        assert result.messages == 2
        assert result.makespan > 0
        assert len(result.node_results) == 2

    def test_each_node_has_own_scheduler(self):
        machines = [symmetric_machine(1, 2, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(machines, "dam-c", _ping_pong_builder())
        s0 = runtime.runtimes[0].scheduler
        s1 = runtime.runtimes[1].scheduler
        assert s0 is not s1
        assert s0.ptt is not s1.ptt

    def test_per_rank_scenarios(self):
        from repro.interference.corunner import CorunnerInterference
        machines = [symmetric_machine(1, 4, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines,
            "rws",
            _ping_pong_builder(),
            scenarios={0: CorunnerInterference([0], start=0.0)},
        )
        runtime.run()
        assert runtime.handles[0].speed.cpu_share(0) == 0.5
        assert runtime.handles[1].speed.cpu_share(0) == 1.0

    def test_empty_machines_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedRuntime([], "rws", _ping_pong_builder())

    def test_missing_peer_message_deadlocks_cleanly(self):
        """A one-sided receive with no sender raises, not hangs."""

        def bad_builder(handle):
            graph = TaskGraph(f"bad-{handle.rank}")
            if handle.rank == 0:
                op = handle.comm.recv_op(src=1, tag=99, size_bytes=8.0)
                graph.add_task(
                    handle.comm.comm_kernel("orphan-recv", 8.0),
                    priority=Priority.HIGH,
                    metadata={"comm_op": op},
                )
            else:
                graph.add_task(FixedWorkKernel("noop", work=1e-6))
            return graph

        machines = [symmetric_machine(1, 2, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(machines, "rws", bad_builder)
        from repro.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError, match="deadlock"):
            runtime.run()


class TestRecvTimeout:
    """A receive that outlives its deadline fails with a typed error
    instead of hanging the simulation forever."""

    def _fabric(self, env, **kw):
        return Fabric(env, 2, Interconnect(latency_s=1e-3,
                                           bandwidth_bytes_per_s=1e6), **kw)

    def test_orphan_recv_times_out(self):
        env = Environment()
        fabric = self._fabric(env)
        failures = []

        def receiver():
            try:
                yield fabric.recv(1, src=0, tag=7, timeout=0.5)
            except CommunicationTimeout as exc:
                failures.append((env.now, exc))

        env.process(receiver())
        env.run()
        assert len(failures) == 1
        t, exc = failures[0]
        assert t == pytest.approx(0.5)
        assert exc.dst == 1 and exc.src == 0 and exc.tag == 7
        assert exc.timeout == pytest.approx(0.5)

    def test_timely_message_unaffected(self):
        env = Environment()
        fabric = self._fabric(env)
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=7, timeout=1.0)
            got.append(msg.payload)

        env.process(receiver())
        fabric.send(Message(0, 1, 7, size_bytes=1e3, payload="ok"))
        env.run()
        assert got == ["ok"]

    def test_timed_out_getter_does_not_swallow_later_message(self):
        env = Environment()
        fabric = self._fabric(env)
        events = []

        def impatient():
            try:
                yield fabric.recv(1, src=0, tag=7, timeout=0.1)
            except CommunicationTimeout:
                events.append("timeout")

        def late_sender():
            yield env.timeout(0.2)
            fabric.send(Message(0, 1, 7, size_bytes=0.0, payload="late"))

        def second_receiver():
            yield env.timeout(0.15)
            msg = yield fabric.recv(1, src=0, tag=7)
            events.append(msg.payload)

        env.process(impatient())
        env.process(late_sender())
        env.process(second_receiver())
        env.run()
        # The cancelled getter must not have consumed the late message.
        assert events == ["timeout", "late"]

    def test_fabric_default_timeout(self):
        env = Environment()
        fabric = self._fabric(env, recv_timeout=0.25)
        failures = []

        def receiver():
            try:
                yield fabric.recv(1, src=0, tag=0)
            except CommunicationTimeout:
                failures.append(env.now)

        env.process(receiver())
        env.run()
        assert failures == [pytest.approx(0.25)]

    def test_invalid_timeouts_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            self._fabric(env, recv_timeout=0.0)
        fabric = self._fabric(env)
        with pytest.raises(ConfigurationError):
            fabric.recv(1, src=0, tag=0, timeout=-1.0)


class TestMessageFaults:
    IC = Interconnect(latency_s=1e-3, bandwidth_bytes_per_s=1e6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MessageFaultModel(drop_prob=1.0)  # certain loss can never deliver
        with pytest.raises(ConfigurationError):
            MessageFaultModel(drop_prob=-0.1)
        with pytest.raises(ConfigurationError):
            MessageFaultModel(delay_prob=1.5)
        with pytest.raises(ConfigurationError):
            MessageFaultModel(delay=-1.0)
        with pytest.raises(ConfigurationError):
            MessageFaultModel(max_retransmits=-1)
        with pytest.raises(ConfigurationError):
            MessageFaultModel(retransmit_delay=-1.0)

    def test_drop_budget_exhaustion_fails_send(self):
        # seed=0 drops the first three attempts: budget of 2 retransmits
        # is exhausted and the send's completion event fails.
        env = Environment()
        fabric = Fabric(env, 2, self.IC,
                        faults=MessageFaultModel(drop_prob=0.9,
                                                 max_retransmits=2, seed=0))
        failures = []

        def sender():
            try:
                yield fabric.send(Message(0, 1, 7, size_bytes=1e3))
            except MessageDropped as exc:
                failures.append(exc)

        env.process(sender())
        env.run()
        (exc,) = failures
        assert exc.src == 0 and exc.dst == 1 and exc.tag == 7
        assert exc.attempts == 3
        assert fabric.messages_dropped == 3
        assert fabric.retransmissions == 2
        assert fabric.messages_delivered == 0

    def test_retransmission_recovers_a_dropped_message(self):
        # seed=1 drops the first attempt and delivers the second.
        env = Environment()
        fabric = Fabric(env, 2, self.IC,
                        faults=MessageFaultModel(drop_prob=0.9,
                                                 max_retransmits=3,
                                                 retransmit_delay=1e-3,
                                                 seed=1))
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=7)
            got.append(env.now)

        env.process(receiver())
        fabric.send(Message(0, 1, 7, size_bytes=1e3))
        env.run()
        # wire=2e-3; attempt 1 occupies [0, 2e-3] then is lost; the
        # retransmission enters at 3e-3 and lands at 5e-3.
        assert got == [pytest.approx(5e-3)]
        assert fabric.messages_dropped == 1
        assert fabric.retransmissions == 1
        assert fabric.messages_delivered == 1

    def test_recv_timeout_inside_retransmit_window_sees_no_retries(self):
        # seed=1 drops the first attempt (wire=2e-3, lost at 2e-3); the
        # retransmission is due at 12e-3.  The budget must be charged
        # when the retransmission is *attempted*, not when it is
        # scheduled: a receiver timing out at 5e-3 — inside the
        # retransmit-delay window — observes one drop and zero
        # retransmissions.
        env = Environment()
        fabric = Fabric(env, 2, self.IC,
                        faults=MessageFaultModel(drop_prob=0.9,
                                                 max_retransmits=3,
                                                 retransmit_delay=10e-3,
                                                 seed=1))
        observed = []

        def receiver():
            try:
                yield fabric.recv(1, src=0, tag=7, timeout=5e-3)
            except CommunicationTimeout:
                observed.append(
                    (env.now, fabric.messages_dropped,
                     fabric.retransmissions)
                )
            # The retried receive picks the message up once the (now
            # charged) retransmission lands at 14e-3.
            yield fabric.recv(1, src=0, tag=7)
            observed.append(
                (env.now, fabric.messages_dropped, fabric.retransmissions)
            )

        env.process(receiver())
        fabric.send(Message(0, 1, 7, size_bytes=1e3))
        env.run()
        assert observed == [
            (pytest.approx(5e-3), 1, 0),
            (pytest.approx(14e-3), 1, 1),
        ]
        assert fabric.messages_delivered == 1

    def test_delay_fault_postpones_delivery(self):
        env = Environment()
        fabric = Fabric(env, 2, self.IC,
                        faults=MessageFaultModel(delay_prob=1.0, delay=0.05))
        got = []

        def receiver():
            yield fabric.recv(1, src=0, tag=0)
            got.append(env.now)

        env.process(receiver())
        fabric.send(Message(0, 1, 0, size_bytes=1e3))
        env.run()
        assert got == [pytest.approx(2e-3 + 0.05)]

    def test_seeded_faults_replay_bit_identically(self):
        def chaos_run():
            env = Environment()
            fabric = Fabric(env, 2, self.IC,
                            faults=MessageFaultModel(drop_prob=0.3,
                                                     delay_prob=0.3,
                                                     delay=1e-3,
                                                     max_retransmits=5,
                                                     retransmit_delay=1e-4,
                                                     seed=42))
            arrivals = []

            def receiver():
                for _ in range(10):
                    yield fabric.recv(1, src=0, tag=0)
                    arrivals.append(env.now)

            env.process(receiver())
            for _ in range(10):
                fabric.send(Message(0, 1, 0, size_bytes=1e3))
            env.run()
            return (arrivals, fabric.messages_dropped,
                    fabric.retransmissions, fabric.messages_delivered)

        assert chaos_run() == chaos_run()

    def test_zero_probability_model_is_inert(self):
        def arrival(faults):
            env = Environment()
            fabric = Fabric(env, 2, self.IC, faults=faults)
            got = []

            def receiver():
                yield fabric.recv(1, src=0, tag=0)
                got.append(env.now)

            env.process(receiver())
            fabric.send(Message(0, 1, 0, size_bytes=1e3))
            env.run()
            return got[0]

        assert arrival(MessageFaultModel()) == arrival(None)


class TestDistributedRuntimeFaults:
    def test_ping_pong_completes_under_message_chaos(self):
        machines = [symmetric_machine(1, 4, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines, "dam-c", _ping_pong_builder(),
            message_faults=MessageFaultModel(
                drop_prob=0.4, delay_prob=0.5, delay=1e-3,
                max_retransmits=8, retransmit_delay=1e-4, seed=3,
            ),
            recv_timeout=60.0,
        )
        result = runtime.run()
        assert result.tasks_completed == 4
        assert runtime.fabric.messages_delivered == 2

    def test_recv_timeout_turns_deadlock_into_typed_error(self):
        def orphan_builder(handle):
            graph = TaskGraph(f"orphan-{handle.rank}")
            if handle.rank == 0:
                op = handle.comm.recv_op(src=1, tag=99, size_bytes=8.0)
                graph.add_task(
                    handle.comm.comm_kernel("orphan-recv", 8.0),
                    priority=Priority.HIGH,
                    metadata={"comm_op": op},
                )
            else:
                graph.add_task(FixedWorkKernel("noop", work=1e-6))
            return graph

        machines = [symmetric_machine(1, 2, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines, "rws", orphan_builder, recv_timeout=0.5
        )
        with pytest.raises(CommunicationTimeout):
            runtime.run()


class TestStealEdgeCases:
    """Work stealing at its boundaries: no victims, empty victims, and a
    victim that crashes while holding stealable work."""

    def _runtime(self, num_cores, with_faults=False, tasks=0):
        from repro.core.policies.registry import make_scheduler
        from repro.faults import FaultPlan, FaultScenario
        from repro.machine.speed import SpeedModel
        from repro.runtime.executor import SimulatedRuntime

        env = Environment()
        machine = symmetric_machine(1, num_cores)
        speed = SpeedModel(env, machine)
        if with_faults:
            FaultScenario(FaultPlan()).install(env, speed, machine)
        graph = TaskGraph("steal-edges")
        made = [
            graph.add_task(FixedWorkKernel("k", work=1e-4))
            for _ in range(tasks)
        ]
        runtime = SimulatedRuntime(
            env, machine, graph, make_scheduler("rws"), speed=speed, seed=0
        )
        return env, runtime, made

    def test_single_core_machine_never_steals(self):
        _, runtime, _ = self._runtime(num_cores=1)
        assert runtime._try_steal(0) is None

    def test_steal_scan_over_empty_victims_fails_cleanly(self):
        _, runtime, _ = self._runtime(num_cores=4)
        before = runtime.collector.failed_steal_scans
        assert runtime._try_steal(0) is None
        assert runtime.collector.failed_steal_scans == before + 1

    def test_thief_never_probes_its_own_queue(self):
        # Only the thief's queue holds work: every probe must skip it.
        _, runtime, tasks = self._runtime(num_cores=2, tasks=1)
        runtime.wsqs[0].push(tasks[0])
        for _ in range(50):
            assert runtime._try_steal(0) is None
        assert len(runtime.wsqs[0]) == 1

    def test_steal_racing_victim_crash(self):
        # The victim crashes while its queue holds work; detection
        # reclaims it onto live cores, where stealing can still find it.
        env, runtime, tasks = self._runtime(
            num_cores=4, with_faults=True, tasks=3
        )
        for task in tasks:
            runtime.wsqs[1].push(task)
        runtime.on_core_crashed(1)
        env.run()  # lease expires, queues reclaimed
        assert runtime._dead[1]
        assert len(runtime.wsqs[1]) == 0
        live_depth = sum(len(q) for q in runtime.wsqs)
        assert live_depth == 3  # nothing lost in the race
        stolen = [
            task for task in
            (runtime._try_steal(2) for _ in range(100))
            if task is not None
        ]
        assert stolen  # reclaimed work is reachable by thieves
        assert all(t in tasks for t in stolen)
