"""Tests for the fabric, SimMPI, and the multi-node runtime."""

import pytest

from repro.distributed.cluster_runtime import DistributedRuntime
from repro.distributed.message import Message
from repro.distributed.mpi import CommTaskBuilder, SimMpi
from repro.distributed.network import Fabric
from repro.errors import CommunicationError, ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.task import Priority
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.interconnect import Interconnect
from repro.machine.presets import symmetric_machine
from repro.sim.environment import Environment


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(-1, 0, 0, 10.0)
        with pytest.raises(ValueError):
            Message(0, 0, 0, -1.0)

    def test_ids_unique(self):
        a = Message(0, 1, 0, 1.0)
        b = Message(0, 1, 0, 1.0)
        assert a.msg_id != b.msg_id


class TestFabric:
    def test_send_recv_roundtrip(self):
        env = Environment()
        fabric = Fabric(env, 2, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e6))
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=7)
            got.append((env.now, msg.payload))

        env.process(receiver())
        fabric.send(Message(0, 1, 7, size_bytes=1e3, payload="hello"))
        env.run()
        # wire = 1e-3 + 1e3/1e6 = 2e-3
        assert got == [(pytest.approx(2e-3), "hello")]
        assert fabric.messages_delivered == 1
        assert fabric.bytes_delivered == 1e3

    def test_same_link_serializes(self):
        env = Environment()
        fabric = Fabric(env, 2, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e9))
        times = []

        def receiver():
            for _ in range(2):
                yield fabric.recv(1, src=0, tag=0)
                times.append(env.now)

        env.process(receiver())
        fabric.send(Message(0, 1, 0, 0.0))
        fabric.send(Message(0, 1, 0, 0.0))
        env.run()
        assert times[0] == pytest.approx(1e-3)
        assert times[1] == pytest.approx(2e-3)

    def test_different_links_parallel(self):
        env = Environment()
        fabric = Fabric(env, 3, Interconnect(latency_s=1e-3,
                                             bandwidth_bytes_per_s=1e9))
        times = {}

        def receiver(rank):
            yield fabric.recv(rank, src=0, tag=0)
            times[rank] = env.now

        env.process(receiver(1))
        env.process(receiver(2))
        fabric.send(Message(0, 1, 0, 0.0))
        fabric.send(Message(0, 2, 0, 0.0))
        env.run()
        assert times[1] == pytest.approx(1e-3)
        assert times[2] == pytest.approx(1e-3)

    def test_local_delivery_immediate(self):
        env = Environment()
        fabric = Fabric(env, 2)
        done = fabric.send(Message(0, 0, 1, 100.0))
        assert done.triggered

    def test_tag_matching(self):
        env = Environment()
        fabric = Fabric(env, 2)
        got = []

        def receiver():
            msg = yield fabric.recv(1, src=0, tag=5)
            got.append(msg.tag)

        env.process(receiver())
        fabric.send(Message(0, 1, 9, 0.0))   # wrong tag: buffered, ignored
        fabric.send(Message(0, 1, 5, 0.0))
        env.run()
        assert got == [5]

    def test_rank_validation(self):
        env = Environment()
        fabric = Fabric(env, 2)
        with pytest.raises(CommunicationError):
            fabric.send(Message(0, 5, 0, 1.0))
        with pytest.raises(CommunicationError):
            Fabric(env, 0)


class TestSimMpi:
    def test_isend_irecv(self):
        env = Environment()
        fabric = Fabric(env, 2)
        mpi0, mpi1 = SimMpi(fabric, 0), SimMpi(fabric, 1)
        assert mpi0.size == 2
        got = []

        def receiver():
            msg = yield mpi1.irecv(src=0, tag=3)
            got.append(msg.payload)

        env.process(receiver())
        mpi0.isend(1, tag=3, size_bytes=8.0, payload=[1, 2])
        env.run()
        assert got == [[1, 2]]


class TestCommTaskBuilder:
    def test_comm_kernel_is_rigid(self):
        env = Environment()
        machine = symmetric_machine(1, 4)
        from repro.machine.speed import SpeedModel
        speed = SpeedModel(env, machine)
        fabric = Fabric(env, 1)
        builder = CommTaskBuilder(env, speed, SimMpi(fabric, 0))
        kernel = builder.comm_kernel("exchange", 1e4)
        assert kernel.parallel_fraction() == 0.0
        assert kernel.seq_work() > 0

    def test_protocol_cost_validation(self):
        env = Environment()
        machine = symmetric_machine(1, 2)
        from repro.machine.speed import SpeedModel
        speed = SpeedModel(env, machine)
        fabric = Fabric(env, 1)
        with pytest.raises(CommunicationError):
            CommTaskBuilder(env, speed, SimMpi(fabric, 0), base_cpu_work=-1)


def _ping_pong_builder(size_bytes=1e3):
    """Two ranks exchange one message via comm tasks, then compute."""

    def builder(handle):
        graph = TaskGraph(f"pp-{handle.rank}")
        peer = 1 - handle.rank
        op = handle.comm.exchange_op(
            peer, send_tag=handle.rank, recv_tag=peer, size_bytes=size_bytes
        )
        kernel = handle.comm.comm_kernel("exchange", size_bytes)
        comm_task = graph.add_task(
            kernel, priority=Priority.HIGH, metadata={"comm_op": op}
        )
        graph.add_task(
            FixedWorkKernel("compute", work=1e-3), deps=[comm_task]
        )
        return graph

    return builder


class TestDistributedRuntime:
    def test_ping_pong_completes(self):
        machines = [symmetric_machine(1, 4, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines, "dam-c", _ping_pong_builder()
        )
        result = runtime.run()
        assert result.tasks_completed == 4
        assert result.messages == 2
        assert result.makespan > 0
        assert len(result.node_results) == 2

    def test_each_node_has_own_scheduler(self):
        machines = [symmetric_machine(1, 2, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(machines, "dam-c", _ping_pong_builder())
        s0 = runtime.runtimes[0].scheduler
        s1 = runtime.runtimes[1].scheduler
        assert s0 is not s1
        assert s0.ptt is not s1.ptt

    def test_per_rank_scenarios(self):
        from repro.interference.corunner import CorunnerInterference
        machines = [symmetric_machine(1, 4, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(
            machines,
            "rws",
            _ping_pong_builder(),
            scenarios={0: CorunnerInterference([0], start=0.0)},
        )
        runtime.run()
        assert runtime.handles[0].speed.cpu_share(0) == 0.5
        assert runtime.handles[1].speed.cpu_share(0) == 1.0

    def test_empty_machines_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedRuntime([], "rws", _ping_pong_builder())

    def test_missing_peer_message_deadlocks_cleanly(self):
        """A one-sided receive with no sender raises, not hangs."""

        def bad_builder(handle):
            graph = TaskGraph(f"bad-{handle.rank}")
            if handle.rank == 0:
                op = handle.comm.recv_op(src=1, tag=99, size_bytes=8.0)
                graph.add_task(
                    handle.comm.comm_kernel("orphan-recv", 8.0),
                    priority=Priority.HIGH,
                    metadata={"comm_op": op},
                )
            else:
                graph.add_task(FixedWorkKernel("noop", work=1e-6))
            return graph

        machines = [symmetric_machine(1, 2, name=f"n{i}") for i in range(2)]
        runtime = DistributedRuntime(machines, "rws", bad_builder)
        from repro.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError, match="deadlock"):
            runtime.run()
