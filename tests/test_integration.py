"""End-to-end integration tests: whole-system invariants and paper shapes.

These run small but complete simulations and assert the *mechanisms* the
paper's evaluation depends on, at test-friendly sizes.
"""

import pytest

from repro.apps.synthetic import paper_matmul_dag
from repro.graph.generators import layered_synthetic_dag
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.kernels.matmul import MatMulKernel
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.presets import jetson_tx2
from repro.metrics.analysis import place_distribution, priority_core_shares
from repro.session import quick_run, run_graph


def corunner():
    return CorunnerInterference.matmul_chain([0])


class TestConservation:
    @pytest.mark.parametrize("sched", ["rws", "fa", "dam-c", "dam-p", "dheft"])
    def test_tasks_conserved_under_interference(self, sched):
        result = quick_run(
            scheduler=sched, kernel="matmul", parallelism=3,
            total_tasks=120, scenario=corunner(),
        )
        assert result.tasks_completed == 120
        assert len(result.collector.records) == 120

    def test_makespan_bounded_below_by_critical_path(self):
        machine = jetson_tx2()
        kernel = MatMulKernel()
        graph = layered_synthetic_dag(kernel, 2, 60)
        # Moldability-aware bound: even at the best conceivable width on
        # the fastest core a task cannot beat this duration.
        f = kernel.parallel_fraction()
        ideal = (1.0 - f) + f / machine.num_cores
        lower = (
            graph.longest_path(weight=lambda t: t.kernel.seq_work())
            * ideal / machine.max_base_speed()
        )
        result = run_graph(graph, machine, "dam-c")
        assert result.makespan >= lower * 0.99

    def test_busy_time_bounded_by_makespan_per_core(self):
        result = quick_run(scheduler="rws", parallelism=4, total_tasks=200)
        for core, busy in result.collector.core_busy.items():
            assert busy <= result.makespan * (1 + 1e-9)


class TestInterferenceAwareness:
    """The central claims of §5.1 at test scale."""

    def _dist(self, sched, total=400):
        result = quick_run(
            scheduler=sched, kernel="matmul", parallelism=2,
            total_tasks=total, scenario=corunner(),
        )
        return result, place_distribution(result.collector.records)

    def test_dynamic_schedulers_avoid_interfered_core(self):
        for sched in ("da", "dam-c", "dam-p"):
            _result, dist = self._dist(sched)
            share0 = sum(
                v for p, v in dist.items()
                if p.leader <= 0 < p.leader + p.width
            )
            assert share0 < 0.05, sched

    def test_fa_splits_between_fast_cores(self):
        _result, dist = self._dist("fa")
        shares = priority_core_shares(_result.collector.records)
        assert shares[0] == pytest.approx(0.5, abs=0.02)
        assert shares[1] == pytest.approx(0.5, abs=0.02)

    def test_rws_scatters_priority_tasks(self):
        _result, dist = self._dist("rws")
        used_cores = {p.leader for p in dist}
        assert len(used_cores) == 6  # all cores see priority tasks

    def test_scheduler_ordering_under_corunner(self):
        """RWS < FA < DAM-C in throughput at low parallelism (Fig 4a)."""
        thr = {}
        for sched in ("rws", "fa", "dam-c"):
            result = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=400, scenario=corunner(),
            )
            thr[sched] = result.throughput
        assert thr["rws"] < thr["fa"] < thr["dam-c"]

    def test_da_concentrates_on_free_fast_core(self):
        _result, dist = self._dist("da")
        import repro.machine.topology as topo
        best = max(dist.items(), key=lambda kv: kv[1])
        assert best[0] == topo.ExecutionPlace(1, 1)
        assert best[1] > 0.9


class TestDvfsAwareness:
    def test_dynamic_beats_fixed_under_dvfs(self):
        """§5.2 at test scale: DAM-C > RWS under DVFS, and DAM-P best at
        parallelism 2."""
        wave = PeriodicSquareWave(half_period=0.25)
        thr = {}
        for sched in ("rws", "fa", "dam-c", "dam-p"):
            result = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=800,
                scenario=DvfsInterference(wave=wave),
            )
            thr[sched] = result.throughput
        assert thr["dam-c"] > thr["rws"]
        assert thr["dam-p"] >= thr["dam-c"]


class TestNoInterferenceBaseline:
    def test_schedulers_closer_without_interference(self):
        """Without interference the dynamic advantage shrinks: FA and
        DAM-C are within a modest factor (sanity that gains in the
        interference tests come from interference, not from an unrelated
        artifact)."""
        gaps = {}
        for sched in ("fa", "dam-c"):
            result = quick_run(
                scheduler=sched, kernel="matmul", parallelism=4,
                total_tasks=400,
            )
            gaps[sched] = result.throughput
        assert gaps["dam-c"] / gaps["fa"] < 1.5

    def test_ptt_explores_all_places(self):
        result = quick_run(scheduler="dam-c", parallelism=4, total_tasks=400)
        scheduler = result.extra["scheduler"]
        table = scheduler.ptt.table("matmul64")
        assert table.explored_fraction() == 1.0
