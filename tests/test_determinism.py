"""Determinism: a run is a pure function of (workload, machine, policy, seed)."""

import pytest

from repro.apps.kmeans import KMeansConfig, build_kmeans_graph
from repro.interference.corunner import CorunnerInterference
from repro.machine.presets import haswell16
from repro.runtime.config import RuntimeConfig
from repro.session import quick_run, run_graph


def fingerprint(result):
    records = result.collector.records
    return (
        result.makespan,
        result.tasks_completed,
        tuple((r.task_id, r.place, r.exec_start, r.exec_end) for r in records),
    )


class TestSameSeedSameRun:
    @pytest.mark.parametrize("sched", ["rws", "dam-c", "dam-p"])
    def test_identical_fingerprints(self, sched):
        kwargs = dict(
            scheduler=sched, kernel="matmul", parallelism=3,
            total_tasks=150,
            scenario=CorunnerInterference.matmul_chain([0]),
            seed=7,
        )
        a = quick_run(**kwargs)
        kwargs["scenario"] = CorunnerInterference.matmul_chain([0])
        b = quick_run(**kwargs)
        assert fingerprint(a) == fingerprint(b)

    def test_noise_stream_is_seeded(self):
        from repro.graph.generators import layered_synthetic_dag
        from repro.kernels.matmul import MatMulKernel
        from repro.machine.presets import jetson_tx2

        def go():
            graph = layered_synthetic_dag(MatMulKernel(), 2, 60)
            return run_graph(
                graph, jetson_tx2(), "dam-c",
                config=RuntimeConfig(measurement_noise=1e-4),
                seed=3,
            )

        assert fingerprint(go()) == fingerprint(go())


class TestSeedSensitivity:
    def test_different_seed_changes_stealing(self):
        """RWS runs under different seeds place tasks differently."""
        def go(seed):
            return quick_run(
                scheduler="rws", kernel="matmul", parallelism=4,
                total_tasks=200, seed=seed,
            )

        a, b = go(0), go(1)
        places_a = [r.place for r in a.collector.records]
        places_b = [r.place for r in b.collector.records]
        assert places_a != places_b


class TestDynamicDagDeterminism:
    def test_kmeans_run_reproducible(self):
        def go():
            graph = build_kmeans_graph(KMeansConfig(iterations=6, partitions=4))
            return run_graph(graph, haswell16(), "dam-p", seed=11)

        assert fingerprint(go()) == fingerprint(go())
