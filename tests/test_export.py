"""Tests for JSON export/import of run traces."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analysis import place_distribution, throughput
from repro.metrics.export import (
    dump_run,
    load_records,
    record_from_dict,
    record_to_dict,
    records_from_dicts,
    run_result_to_dict,
)
from repro.session import quick_run


@pytest.fixture(scope="module")
def run():
    return quick_run(scheduler="dam-c", parallelism=3, total_tasks=90)


class TestRecordRoundtrip:
    def test_roundtrip_preserves_fields(self, run):
        original = run.collector.records[0]
        rebuilt = record_from_dict(record_to_dict(original))
        assert rebuilt.task_id == original.task_id
        assert rebuilt.place == original.place
        assert rebuilt.priority == original.priority
        assert rebuilt.exec_start == original.exec_start
        assert rebuilt.observed == original.observed

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_dict({"task_id": 1})

    def test_non_jsonable_metadata_dropped(self, run):
        record = run.collector.records[0]
        record.metadata["callable"] = lambda: None
        payload = record_to_dict(record)
        assert "callable" not in payload["metadata"]
        json.dumps(payload)  # fully serializable


class TestRunExport:
    def test_run_dict_is_json_serializable(self, run):
        payload = run_result_to_dict(run)
        text = json.dumps(payload)
        assert payload["tasks_completed"] == 90
        assert len(payload["records"]) == 90
        assert json.loads(text)["scheduler"] == "DAM-C"

    def test_dump_and_load(self, run, tmp_path):
        path = tmp_path / "run.json"
        dump_run(run, str(path))
        records = load_records(str(path))
        assert len(records) == 90
        # Analysis helpers work on reloaded traces.
        assert throughput(records, run.makespan) == pytest.approx(
            run.throughput
        )
        dist = place_distribution(records)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_records_from_dicts(self, run):
        dicts = [record_to_dict(r) for r in run.collector.records[:5]]
        assert len(records_from_dicts(dicts)) == 5
