"""Property-based end-to-end tests: the runtime conserves work for random
DAGs, schedulers, and machines."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import SCHEDULER_NAMES, make_scheduler
from repro.graph.generators import random_layered_dag
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment

KERNELS = [
    FixedWorkKernel("small", work=2e-4, parallel_fraction=0.5),
    FixedWorkKernel("big", work=2e-3, parallel_fraction=0.95,
                    memory_intensity=0.4),
    FixedWorkKernel("rigid", work=5e-4, parallel_fraction=0.0),
]

SLOWISH = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOWISH
@given(
    scheduler=st.sampled_from(SCHEDULER_NAMES + ("dheft",)),
    seed=st.integers(min_value=0, max_value=10_000),
    layers=st.integers(min_value=1, max_value=8),
    width=st.integers(min_value=1, max_value=6),
)
def test_random_dag_executes_completely(scheduler, seed, layers, width):
    """Every task of a random DAG executes exactly once under every
    scheduler, with makespan respecting the work/critical-path bounds."""
    graph = random_layered_dag(KERNELS, layers, width, seed=seed)
    total = graph.total_tasks
    machine = jetson_tx2()
    env = Environment()
    runtime = SimulatedRuntime(
        env, machine, graph, make_scheduler(scheduler), seed=seed
    )
    result = runtime.run()
    assert result.tasks_completed == total
    ids = [r.task_id for r in runtime.collector.records]
    assert len(set(ids)) == total

    # Makespan lower bounds: the *moldable* critical path (every task at
    # its best conceivable width on the fastest core) and total work over
    # aggregate capacity.
    max_speed = machine.max_base_speed()
    aggregate = sum(c.base_speed for c in machine.cores)

    def best_case_duration(task):
        f = task.kernel.parallel_fraction()
        ideal_scaling = (1.0 - f) + f / machine.num_cores
        return task.kernel.seq_work() * ideal_scaling / max_speed

    cp_bound = graph.longest_path(weight=best_case_duration)
    area_bound = graph.total_work() / aggregate
    assert result.makespan >= max(cp_bound, area_bound) * 0.999

    # Busy-time sanity: no core is busy longer than the run.
    for busy in runtime.collector.core_busy.values():
        assert busy <= result.makespan * (1 + 1e-9)

    # Record sanity: execution windows are well-formed.
    for record in runtime.collector.records:
        assert record.exec_end >= record.exec_start >= record.ready_time >= 0


@SLOWISH
@given(
    scheduler=st.sampled_from(("rws", "dam-c", "dam-p")),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_symmetric_machine_random_dag(scheduler, seed):
    """Same conservation on a two-socket symmetric machine."""
    graph = random_layered_dag(KERNELS, 5, 5, seed=seed)
    total = graph.total_tasks
    env = Environment()
    runtime = SimulatedRuntime(
        env, symmetric_machine(2, 4), graph, make_scheduler(scheduler),
        seed=seed,
    )
    result = runtime.run()
    assert result.tasks_completed == total


@SLOWISH
@given(seed=st.integers(min_value=0, max_value=500))
def test_high_priority_placement_honored(seed):
    """Under DA/DAM schedulers, no high-priority record is marked stolen."""
    graph = random_layered_dag(KERNELS, 6, 5, seed=seed)
    env = Environment()
    runtime = SimulatedRuntime(
        env, jetson_tx2(), graph, make_scheduler("dam-c"), seed=seed
    )
    runtime.run()
    for record in runtime.collector.records:
        if record.is_high_priority:
            assert not record.stolen
