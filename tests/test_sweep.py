"""Tier-1 tests of the parallel sweep engine (repro.sweep).

The engine's two contracts: a parallel sweep is bit-identical to a serial
one, and the on-disk cache replays exactly what was computed.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import fig4_spec
from repro.sweep import RunSpec, SweepRunner, derive_seed, execute_spec


def _fig4_slice():
    """A small Fig. 4 slice: matmul, P in {2, 3}, three schedulers."""
    settings = ExperimentSettings(scale=0.01)
    return [
        fig4_spec(settings, "matmul", parallelism, sched)
        for parallelism in (2, 3)
        for sched in ("rws", "fa", "dam-c")
    ]


class TestRunSpec:
    def test_key_is_stable_and_tag_independent(self):
        spec = RunSpec(params={"workload": {"name": "layered", "kernel":
                                            "matmul", "parallelism": 2,
                                            "total": 40}})
        same = RunSpec(params={"workload": {"kernel": "matmul", "total": 40,
                                            "parallelism": 2,
                                            "name": "layered"}},
                       tags={"anything": "else"})
        assert spec.key() == same.key()

    def test_key_changes_with_seed_and_params(self):
        base = RunSpec(params={"machine": "jetson_tx2"})
        assert base.key() != RunSpec(params={"machine": "jetson_tx2"},
                                     seed=1).key()
        assert base.key() != RunSpec(params={"machine": "haswell16"}).key()

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(params={"callback": lambda: None})

    def test_derive_seed_deterministic(self):
        assert derive_seed(0, "fig4", 2) == derive_seed(0, "fig4", 2)
        assert derive_seed(0, "fig4", 2) != derive_seed(1, "fig4", 2)


class TestSweepRunner:
    def test_parallel_matches_serial_bit_identical(self, tmp_path):
        specs = _fig4_slice()
        serial = SweepRunner(jobs=1, use_cache=False, progress=False)
        parallel = SweepRunner(jobs=4, use_cache=False, progress=False)
        expected = serial.run(specs)
        actual = parallel.run(specs)
        assert actual == expected  # exact float equality, in input order
        for metrics in expected:
            assert metrics["throughput"] > 0

    def test_cache_round_trip(self, tmp_path):
        specs = _fig4_slice()
        cold = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        first = cold.run(specs)
        assert cold.last_stats.hits == 0
        assert cold.last_stats.executed == len(specs)

        warm = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        second = warm.run(specs)
        assert warm.last_stats.hits == len(specs)
        assert warm.last_stats.executed == 0
        assert second == first

    def test_cache_entries_are_valid_json(self, tmp_path):
        spec = _fig4_slice()[0]
        SweepRunner(jobs=1, cache_dir=tmp_path, progress=False).run([spec])
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["key"] == spec.key()
        assert entry["identity"]["params"] == spec.params

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        spec = _fig4_slice()[0]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (first,) = runner.run([spec])
        path, = tmp_path.glob("*.json")
        path.write_text("{not json")
        rerun = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (second,) = rerun.run([spec])
        assert rerun.last_stats.hits == 0
        assert second == first

    @pytest.mark.parametrize(
        "payload",
        ["[]", "42", '"a string"', "null", '{"key": "wrong-hash"}',
         '{"key": null, "metrics": []}'],
        ids=["list", "int", "str", "null", "wrong-key", "non-dict-metrics"],
    )
    def test_wrong_shape_cache_entry_is_recomputed(self, tmp_path, payload):
        """Valid JSON of the wrong shape is corruption, not a crash."""
        spec = _fig4_slice()[0]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (first,) = runner.run([spec])
        path = tmp_path / f"{spec.key()}.json"
        path.write_text(payload)
        rerun = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (second,) = rerun.run([spec])
        assert rerun.last_stats.hits == 0
        assert second == first
        # The corrupt entry was rewritten with the recomputed result.
        entry = json.loads(path.read_text())
        assert entry["key"] == spec.key()
        assert entry["metrics"] == first

    def test_truncated_cache_entry_is_recomputed(self, tmp_path):
        spec = _fig4_slice()[0]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (first,) = runner.run([spec])
        path = tmp_path / f"{spec.key()}.json"
        path.write_text(path.read_text()[:25])  # torn write
        rerun = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        (second,) = rerun.run([spec])
        assert rerun.last_stats.hits == 0
        assert second == first
        assert json.loads(path.read_text())["metrics"] == first

    def test_duplicate_specs_executed_once(self, tmp_path):
        spec = _fig4_slice()[0]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, progress=False)
        results = runner.run([spec, spec, spec])
        assert runner.last_stats.unique == 1
        assert results[0] == results[1] == results[2]

    def test_sweep_matches_direct_execution(self):
        spec = _fig4_slice()[0]
        direct = execute_spec(spec)
        (via_runner,) = SweepRunner(
            jobs=1, use_cache=False, progress=False
        ).run([spec])
        assert via_runner == direct

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=0)


class TestCompositeScenarioSpec:
    def test_composite_scenario_runs_declaratively(self):
        """The 'composite' registry entry nests other scenario specs."""
        spec = RunSpec(
            kind="single",
            params={
                "workload": {"name": "layered", "kernel": "matmul",
                             "parallelism": 2, "total": 40},
                "machine": "jetson_tx2",
                "scheduler": "dam-c",
                "scenario": {
                    "name": "composite",
                    "scenarios": [
                        {"name": "corunner", "cores": [0], "cpu_share": 0.5},
                        {"name": "dvfs", "cores": [0, 1],
                         "half_period": 0.02},
                    ],
                },
            },
            metrics=("throughput",),
        )
        (row,) = SweepRunner(jobs=1, use_cache=False, progress=False).run(
            [spec]
        )
        assert row["throughput"] > 0
