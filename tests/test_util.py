"""Tests for utility helpers."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.rng import RngFactory, make_rng, spawn_rngs
from repro.util.stats import geometric_mean, summarize, weighted_average
from repro.util.tables import format_table
from repro.util.validation import require, require_in_range, require_positive


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_factory_same_name_same_stream(self):
        factory = RngFactory(42)
        a = factory.get("steal").random(4)
        b = factory.get("steal").random(4)
        assert np.array_equal(a, b)

    def test_factory_different_names_differ(self):
        factory = RngFactory(42)
        assert factory.get("a").random() != factory.get("b").random()

    def test_factory_seed_changes_streams(self):
        assert RngFactory(1).get("x").random() != RngFactory(2).get("x").random()


class TestStats:
    def test_weighted_average_paper_rule(self):
        # updated = (4*old + new) / 5
        assert weighted_average(10.0, 20.0, 1, 5) == pytest.approx(12.0)

    def test_weighted_average_full_weight_replaces(self):
        assert weighted_average(10.0, 20.0, 5, 5) == pytest.approx(20.0)

    def test_weighted_average_validates(self):
        with pytest.raises(ValueError):
            weighted_average(1.0, 2.0, 0, 5)
        with pytest.raises(ValueError):
            weighted_average(1.0, 2.0, 6, 5)

    def test_weighted_average_converges_after_three_updates(self):
        # The paper's resilience claim: after a regime change, at least
        # three samples are needed before the value is closer to the new
        # regime than the old one.
        value = 1.0
        history = []
        for _ in range(5):
            value = weighted_average(value, 2.0, 1, 5)
            history.append(value)
        assert history[0] < 1.5 and history[1] < 1.5
        assert history[2] > 1.48  # roughly at the midpoint after 3 samples

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.stdev == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTables:
    def test_alignment_and_title(self):
        out = format_table(["A", "Blong"], [[1, 2.5], ["xx", 10000.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A"], [[1, 2]])

    def test_float_rendering(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.123" in out


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        assert require_positive(2.0, "x") == 2.0
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0, 1, "x") == 0.5
        with pytest.raises(ConfigurationError):
            require_in_range(1.5, 0, 1, "x")
