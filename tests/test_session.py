"""Tests for the one-call session helpers and the public API surface."""

import pytest

import repro
from repro.errors import ConfigurationError
from repro.session import quick_run, run_graph


class TestQuickRun:
    def test_defaults(self):
        result = quick_run(total_tasks=60)
        assert result.tasks_completed == 60
        assert result.scheduler_name == "DAM-C"
        assert result.machine_name == "jetson-tx2"

    def test_kernel_selection(self):
        for kernel in ("matmul", "copy", "stencil"):
            result = quick_run(kernel=kernel, parallelism=2, total_tasks=20)
            assert result.tasks_completed == 20

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            quick_run(kernel="fft")

    def test_scheduler_instance_accepted(self):
        from repro.core.policies.rws import RwsScheduler
        from repro.graph.generators import chain_dag
        from repro.kernels.fixed import FixedWorkKernel

        graph = chain_dag(FixedWorkKernel("k", 1e-3), 5)
        result = run_graph(graph, repro.jetson_tx2(), RwsScheduler())
        assert result.tasks_completed == 5


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_scheduler_names_exported(self):
        assert "dam-c" in repro.SCHEDULER_NAMES
