"""Edge cases and failure injection for the runtime."""

import pytest

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.registry import make_scheduler
from repro.errors import SchedulingError
from repro.graph.dag import TaskGraph
from repro.graph.generators import chain_dag, layered_synthetic_dag
from repro.graph.task import Priority
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.cluster import ClusterSpec
from repro.machine.core import CoreSpec
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.machine.topology import ExecutionPlace, Machine
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment


def single_core_machine() -> Machine:
    return Machine(
        [ClusterSpec("solo", 0, 1, l2_kib=1024.0, memory_domain="m")],
        [CoreSpec(0, "solo", 1.0, 32.0)],
        name="single",
    )


@pytest.fixture
def kernel():
    return FixedWorkKernel("k", work=1e-3, parallel_fraction=0.8)


class TestSingleCore:
    @pytest.mark.parametrize("sched", ["rws", "dam-c", "dam-p", "fa"])
    def test_everything_runs_on_one_core(self, sched, kernel):
        machine = single_core_machine()
        graph = layered_synthetic_dag(kernel, 2, 20)
        env = Environment()
        runtime = SimulatedRuntime(env, machine, graph, make_scheduler(sched))
        result = runtime.run()
        assert result.tasks_completed == 20
        # Serial lower bound: all work on the single speed-1 core.
        assert result.makespan >= 20 * 1e-3

    def test_no_steals_possible(self, kernel):
        machine = single_core_machine()
        graph = layered_synthetic_dag(kernel, 3, 30)
        env = Environment()
        runtime = SimulatedRuntime(env, machine, graph, make_scheduler("rws"))
        runtime.run()
        assert runtime.collector.steals == 0


class TestBadPolicies:
    def test_invalid_on_ready_core_raises(self, kernel):
        class BadReady(SchedulerPolicy):
            name = "bad-ready"

            def on_ready(self, task, waker_core):
                return 999

            def choose_place(self, task, core):
                return ExecutionPlace(core, 1)

        graph = TaskGraph()
        graph.add_task(kernel)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, BadReady()
        )
        with pytest.raises(SchedulingError, match="invalid core"):
            runtime.run()

    def test_invalid_place_raises(self, kernel):
        class BadPlace(SchedulerPolicy):
            name = "bad-place"

            def choose_place(self, task, core):
                return ExecutionPlace(3, 2)  # misaligned on the TX2

        graph = TaskGraph()
        graph.add_task(kernel)
        env = Environment()
        runtime = SimulatedRuntime(env, jetson_tx2(), graph, BadPlace())
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            runtime.run()

    def test_comm_op_must_return_event(self, kernel):
        graph = TaskGraph()
        graph.add_task(
            kernel, metadata={"comm_op": lambda assembly: "not an event"}
        )
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("rws")
        )
        with pytest.raises(SchedulingError, match="must return a sim Event"):
            runtime.run()


class TestSharedEnvironmentRuns:
    def test_two_runtimes_one_clock(self, kernel):
        """Two independent runtimes can share one environment (the
        distributed layer relies on this)."""
        env = Environment()
        m1 = symmetric_machine(1, 2, name="m1")
        m2 = symmetric_machine(1, 2, name="m2")
        g1 = chain_dag(kernel, 5)
        g2 = chain_dag(kernel, 8)
        r1 = SimulatedRuntime(env, m1, g1, make_scheduler("rws"), name="r1")
        r2 = SimulatedRuntime(env, m2, g2, make_scheduler("rws"), name="r2")
        r1.start()
        r2.start()
        while not (r1.finished and r2.finished):
            env.step()
        assert r1.graph.is_finished and r2.graph.is_finished


class TestWidePriorityChains:
    def test_wide_critical_tasks_complete(self):
        """High-priority tasks molded over whole clusters do not deadlock
        the rendezvous, even interleaved with wide low tasks."""
        wide = FixedWorkKernel("wide", work=5e-3, parallel_fraction=0.99,
                               molding_overhead=0.0)
        graph = layered_synthetic_dag(wide, 5, 100)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("dam-p")
        )
        result = runtime.run()
        assert result.tasks_completed == 100

    def test_fork_join_with_wide_joins(self):
        from repro.graph.generators import fork_join_dag
        wide = FixedWorkKernel("wide", work=2e-3, parallel_fraction=0.95)
        graph = fork_join_dag(wide, fan_out=6, stages=5)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("dam-p")
        )
        result = runtime.run()
        assert result.tasks_completed == graph.total_tasks


class TestStealBackoff:
    def test_unstealable_work_eventually_runs(self, kernel):
        """A WSQ holding only steal-exempt tasks does not hang idle
        workers: the owner drains it."""
        graph = TaskGraph()
        root = graph.add_task(kernel, priority=Priority.HIGH)
        for _ in range(5):
            graph.add_task(kernel, deps=[root], priority=Priority.HIGH)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("da")
        )
        result = runtime.run()
        assert result.tasks_completed == 6

    def test_failed_scans_counted(self, kernel):
        graph = layered_synthetic_dag(kernel, 2, 40)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("da")
        )
        runtime.run()
        # With parallelism 2 on 6 cores, idle workers often probe empty
        # victims.
        assert runtime.collector.failed_steal_scans > 0


class TestSnapshot:
    def test_snapshot_reflects_progress(self, kernel):
        from repro.graph.generators import layered_synthetic_dag
        graph = layered_synthetic_dag(kernel, 2, 20)
        env = Environment()
        runtime = SimulatedRuntime(
            env, jetson_tx2(), graph, make_scheduler("rws")
        )
        runtime.start()
        before = runtime.snapshot()
        assert before["tasks_done"] == 0
        assert before["tasks_total"] == 20
        assert len(before["wsq_depths"]) == 6
        runtime.run()
        after = runtime.snapshot()
        assert after["tasks_done"] == 20
        assert all(d == 0 for d in after["wsq_depths"])
        assert all(d == 0 for d in after["aq_depths"])
