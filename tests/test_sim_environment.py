"""Tests for the discrete-event engine."""

import pytest

from repro.sim.environment import Environment, Interrupt, Timeout
from repro.sim.events import Event, EventQueue


class TestEvent:
    def test_pending_until_triggered(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            env.event().value

    def test_double_trigger_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callbacks_run_at_processing(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("x")
        assert seen == []  # triggered but not yet processed
        env.run()
        assert seen == ["x"]


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        env = Environment()
        e1, e2 = Event(env), Event(env)
        q.push(2.0, 1, e1)
        q.push(1.0, 1, e2)
        assert q.pop()[3] is e2
        assert q.pop()[3] is e1

    def test_ties_break_by_priority_then_insertion(self):
        q = EventQueue()
        env = Environment()
        events = [Event(env) for _ in range(3)]
        q.push(1.0, 1, events[0])
        q.push(1.0, 0, events[1])  # urgent
        q.push(1.0, 1, events[2])
        assert q.pop()[3] is events[1]
        assert q.pop()[3] is events[0]
        assert q.pop()[3] is events[2]

    def test_cancel_drops_event_lazily(self):
        q = EventQueue()
        env = Environment()
        keep, cancelled = Event(env), Event(env)
        q.push(1.0, 1, cancelled)
        q.push(2.0, 1, keep)
        q.cancel(cancelled)
        assert len(q) == 1
        assert q.peek_time() == 2.0
        assert q.pop()[3] is keep
        assert len(q) == 0

    def test_cancel_all_leaves_queue_empty(self):
        q = EventQueue()
        env = Environment()
        events = [Event(env) for _ in range(3)]
        for i, event in enumerate(events):
            q.push(float(i), 1, event)
        for event in events:
            q.cancel(event)
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.peek_time()


class TestTimeoutAndRun:
    def test_timeout_advances_clock(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(1.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [1.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_run_until_advances_to_limit(self):
        env = Environment()
        env.process(iter_timeout(env, 1.0))
        final = env.run(until=5.0)
        assert final == 5.0
        assert env.now == 5.0

    def test_run_until_in_past_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_events_beyond_until_not_processed(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(10.0)
            fired.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert fired == []

    def test_step_raises_on_empty(self):
        env = Environment()
        with pytest.raises(IndexError):
            env.step()


def iter_timeout(env, delay):
    yield env.timeout(delay)


class TestProcess:
    def test_process_is_waitable(self):
        env = Environment()
        results = []

        def inner():
            yield env.timeout(1.0)
            return "inner-result"

        def outer():
            value = yield env.process(inner())
            results.append((env.now, value))

        env.process(outer())
        env.run()
        assert results == [(1.0, "inner-result")]

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        stamps = []

        def proc():
            for _ in range(3):
                yield env.timeout(2.0)
                stamps.append(env.now)

        env.process(proc())
        env.run()
        assert stamps == [2.0, 4.0, 6.0]

    def test_is_alive_tracks_completion(self):
        """``is_alive`` is exactly "not yet triggered" — true while the
        generator still runs, false from the moment it returns."""
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        process = env.process(proc())
        assert process.is_alive
        env.run(until=1.5)
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()

    def test_crash_propagates(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        env.process(bad())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_wait_on_already_processed_event(self):
        env = Environment()
        event = env.event()
        event.succeed("early")
        seen = []

        def late():
            yield env.timeout(1.0)
            value = yield event
            seen.append(value)

        env.process(late())
        env.run()
        assert seen == ["early"]


class TestInterrupt:
    def test_interrupt_detaches_from_timeout(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("finished")
            except Interrupt as exc:
                log.append(("interrupted", env.now, exc.cause))

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(1.0)
            proc.interrupt("reason")

        env.process(interrupter())
        env.run()
        assert ("interrupted", 1.0, "reason") in log
        assert "finished" not in log

    def test_interrupt_terminated_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(0.1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_failed_event_throws_into_process(self):
        env = Environment()
        event = env.event()
        caught = []

        def waiter():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter())
        event.fail(ValueError("failure payload"))
        env.run()
        assert caught == ["failure payload"]


class TestScheduleAt:
    def test_schedule_at_absolute_time(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(env.now))
        env.schedule_at(3.0, event)
        env.run()
        assert seen == [3.0]

    def test_schedule_in_past_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.schedule_at(1.0, env.event())
