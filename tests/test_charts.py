"""Tests for the plain-text chart helpers."""

import pytest

from repro.util.charts import bar_chart, series_panel, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_value_gets_no_bar(self):
        out = bar_chart(["a", "b"], [4.0, 0.0], width=8)
        assert out.splitlines()[1].count("█") == 0

    def test_title_and_unit(self):
        out = bar_chart(["x"], [3.0], title="T", unit=" t/s")
        assert out.splitlines()[0] == "T"
        assert "t/s" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_all_zero_values(self):
        out = bar_chart(["a"], [0.0])
        assert "0" in out


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_extremes_map_to_ends(self):
        line = sparkline([0.0, 100.0, 0.0])
        assert line[0] == "▁" and line[1] == "█"


class TestSeriesPanel:
    def test_aligned_names_and_legends(self):
        out = series_panel({"short": [1, 2], "longername": [3, 1]})
        lines = out.splitlines()
        assert len(lines) == 2
        assert "[min 1.00, max 2.00]" in lines[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_panel({})
