"""Tests for Algorithm 1's local/global searches."""

import pytest

from repro.core.placement import (
    global_search_cost,
    global_search_performance,
    local_search_cost,
    width_one_places,
)
from repro.core.ptt import PerformanceTraceTable
from repro.machine.presets import jetson_tx2
from repro.machine.topology import ExecutionPlace


@pytest.fixture
def tx2():
    return jetson_tx2()


@pytest.fixture
def ptt(tx2):
    return PerformanceTraceTable(tx2)


def fill(ptt, tx2, times):
    """Populate all entries; ``times`` maps (leader, width) -> seconds,
    default 1.0 per width unit."""
    for place in tx2.places:
        value = times.get((place.leader, place.width), 1.0)
        # first update replaces, so one call is enough
        ptt.update(place, value)


class TestZeroExploration:
    def test_unexplored_entries_win(self, ptt, tx2):
        # Give one entry a value; all-zero others must still be chosen.
        ptt.update(ExecutionPlace(0, 1), 5.0)
        chosen = global_search_cost(ptt, tx2)
        assert ptt.predict(chosen) == 0.0

    def test_all_places_eventually_explored(self, ptt, tx2):
        """Repeated search-then-update visits every place exactly once."""
        visited = []
        for _ in range(len(tx2.places)):
            place = global_search_cost(ptt, tx2)
            assert place not in visited
            visited.append(place)
            ptt.update(place, 1.0)
        assert set(visited) == set(tx2.places)


class TestLocalSearch:
    def test_keeps_core_in_place(self, ptt, tx2):
        fill(ptt, tx2, {})
        for core in range(6):
            place = local_search_cost(ptt, tx2, core)
            cores = tx2.place_cores(place)
            assert core in cores

    def test_minimizes_cost_not_time(self, ptt, tx2):
        # At core 2: width 4 is 3x faster but 4x wider -> cost favors w=1.
        fill(ptt, tx2, {(2, 1): 1.0, (2, 2): 0.6, (2, 4): 0.33})
        assert local_search_cost(ptt, tx2, 2) == ExecutionPlace(2, 1)

    def test_superlinear_speedup_molds(self, ptt, tx2):
        # Width 2 more than halves the time (cache fit) -> cost favors it.
        fill(ptt, tx2, {(2, 1): 1.0, (2, 2): 0.4, (2, 4): 0.3})
        assert local_search_cost(ptt, tx2, 2) == ExecutionPlace(2, 2)

    def test_denver_core_widths_only(self, ptt, tx2):
        fill(ptt, tx2, {})
        place = local_search_cost(ptt, tx2, 1)
        assert place in (ExecutionPlace(1, 1), ExecutionPlace(0, 2))


class TestGlobalSearches:
    def test_cost_vs_performance_difference(self, ptt, tx2):
        # (2,4) is fastest but cost-expensive; (1,1) is cheapest.
        times = {(p.leader, p.width): 1.0 for p in tx2.places}
        times[(2, 4)] = 0.4   # cost 1.6
        times[(1, 1)] = 0.8   # cost 0.8
        fill(ptt, tx2, times)
        assert global_search_cost(ptt, tx2) == ExecutionPlace(1, 1)
        assert global_search_performance(ptt, tx2) == ExecutionPlace(2, 4)

    def test_restricted_pool(self, ptt, tx2):
        fill(ptt, tx2, {(0, 1): 0.1})
        singles = width_one_places(tx2)
        assert all(p.width == 1 for p in singles)
        chosen = global_search_performance(ptt, tx2, singles)
        assert chosen == ExecutionPlace(0, 1)

    def test_deterministic_tie_break_without_backlog(self, ptt, tx2):
        fill(ptt, tx2, {(p.leader, p.width): 2.0 for p in tx2.places})
        assert global_search_performance(ptt, tx2) == tx2.places[0]


class TestBacklogTieBreak:
    def test_ties_resolved_by_least_loaded(self, ptt, tx2):
        times = {(p.leader, p.width): 1.0 for p in tx2.places}
        fill(ptt, tx2, times)
        backlog = {c: 1.0 for c in range(6)}
        backlog[4] = 0.0
        chosen = global_search_performance(
            ptt, tx2, backlog=lambda c: backlog[c]
        )
        assert chosen == ExecutionPlace(4, 1)

    def test_tie_break_does_not_change_width(self, ptt, tx2):
        # Performance winner is (2,4); a width-1 place is within 10% but
        # must not be selected even if totally idle.
        times = {(p.leader, p.width): 1.0 for p in tx2.places}
        times[(2, 4)] = 0.50
        times[(1, 1)] = 0.54
        fill(ptt, tx2, times)
        backlog = {c: 5.0 for c in range(6)}
        backlog[1] = 0.0
        chosen = global_search_performance(
            ptt, tx2, backlog=lambda c: backlog[c]
        )
        assert chosen == ExecutionPlace(2, 4)

    def test_out_of_tolerance_not_tied(self, ptt, tx2):
        times = {(p.leader, p.width): 1.0 for p in tx2.places}
        times[(1, 1)] = 0.5   # clear winner
        times[(0, 1)] = 0.6   # 20% away: not tied
        fill(ptt, tx2, times)
        backlog = {c: 0.0 for c in range(6)}
        backlog[1] = 10.0  # winner is busy, but alternatives aren't tied
        chosen = global_search_performance(
            ptt, tx2, backlog=lambda c: backlog[c]
        )
        assert chosen == ExecutionPlace(1, 1)

    def test_member_backlog_counts_for_wide_places(self, ptt, tx2):
        # Two width-2 places tied; one has a busy second member.
        times = {(p.leader, p.width): 1.0 for p in tx2.places}
        times[(2, 2)] = 0.4  # cost 0.8 < 1.0 everywhere else
        times[(4, 2)] = 0.4
        fill(ptt, tx2, times)
        backlog = {c: 0.0 for c in range(6)}
        backlog[3] = 7.0  # member of (2,2)
        chosen = global_search_cost(ptt, tx2, backlog=lambda c: backlog[c])
        assert chosen == ExecutionPlace(4, 2)
