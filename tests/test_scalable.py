"""Tests for the scalable two-stage placement search (§4.1.1 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import global_search_cost, global_search_performance
from repro.core.ptt import PerformanceTraceTable
from repro.core.scalable import ScalableSearchIndex
from repro.errors import ConfigurationError
from repro.machine.presets import haswell_node, jetson_tx2
from repro.session import quick_run
from repro.interference.corunner import CorunnerInterference

TX2 = jetson_tx2()


@pytest.fixture
def indexed():
    table = PerformanceTraceTable(TX2)
    index = ScalableSearchIndex(TX2, table)
    index.observe()
    return table, index


class TestIndexMaintenance:
    def test_minima_refresh_on_update(self, indexed):
        table, index = indexed
        place = TX2.places[0]
        table.update(place, 5.0)
        cost_min, time_min = index.cluster_minima()["denver"]
        # The untouched entries are still 0, so minima remain 0.
        assert cost_min == 0.0 and time_min == 0.0
        for p in TX2.places:
            table.update(p, 2.0)
        cost_min, time_min = index.cluster_minima()["a57"]
        assert time_min == pytest.approx(2.0)
        assert cost_min == pytest.approx(2.0)  # width-1 entry

    def test_machine_mismatch_rejected(self):
        table = PerformanceTraceTable(TX2)
        with pytest.raises(ConfigurationError):
            ScalableSearchIndex(haswell_node(), table)

    def test_touched_entries_bounded(self, indexed):
        _table, index = indexed
        # TX2: 2 clusters, biggest cluster has 7 places -> <= 9 touched,
        # versus 10 for the flat sweep.
        assert index.entries_touched_per_search() <= len(TX2.places)

    def test_observe_idempotent(self, indexed):
        table, index = indexed
        index.observe()
        table.update(TX2.places[0], 1.0)
        # A double wrap would refresh twice (harmless) or recurse (fatal);
        # reaching here with correct minima is the assertion.
        assert index.cluster_minima()["denver"][1] == 0.0


class TestEquivalenceWithFlatSearch:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-3, max_value=10.0), min_size=10, max_size=10
    ))
    def test_two_stage_equals_flat(self, values):
        """The two-stage search returns a true argmin for both metrics."""
        table = PerformanceTraceTable(TX2)
        index = ScalableSearchIndex(TX2, table)
        index.observe()
        for place, value in zip(TX2.places, values):
            table.update(place, value)
        flat_cost = global_search_cost(table, TX2)
        flat_time = global_search_performance(table, TX2)
        two_cost = index.search_cost()
        two_time = index.search_performance()
        assert table.predict(two_cost) * two_cost.width == pytest.approx(
            table.predict(flat_cost) * flat_cost.width
        )
        assert table.predict(two_time) == pytest.approx(table.predict(flat_time))


class TestEndToEnd:
    def test_scalable_dam_c_matches_flat_results(self):
        """Identical decisions => identical simulated runs."""
        from repro.core.policies.registry import make_scheduler

        def go(scalable):
            return quick_run(
                scheduler=make_scheduler("dam-c", scalable_search=scalable),
                kernel="matmul", parallelism=3, total_tasks=150,
                scenario=CorunnerInterference.matmul_chain([0]),
            )

        flat, fast = go(False), go(True)
        assert flat.makespan == pytest.approx(fast.makespan)
        assert flat.tasks_completed == fast.tasks_completed

    def test_scalable_dam_p_completes(self):
        from repro.core.policies.registry import make_scheduler

        result = quick_run(
            scheduler=make_scheduler("dam-p", scalable_search=True),
            kernel="stencil", parallelism=2, total_tasks=60,
        )
        assert result.tasks_completed == 60
