"""Tests for DVFS governor and interconnect models."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.dvfs import DvfsGovernor, PeriodicSquareWave
from repro.machine.interconnect import Interconnect
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


class TestSquareWave:
    def test_scale_at_phases(self):
        wave = PeriodicSquareWave(1.0, 0.25, half_period=2.0)
        assert wave.scale_at(0.0) == 1.0
        assert wave.scale_at(1.99) == 1.0
        assert wave.scale_at(2.0) == 0.25
        assert wave.scale_at(3.99) == 0.25
        assert wave.scale_at(4.0) == 1.0

    def test_start_low(self):
        wave = PeriodicSquareWave(1.0, 0.5, half_period=1.0, start_high=False)
        assert wave.scale_at(0.0) == 0.5
        assert wave.scale_at(1.0) == 1.0

    def test_negative_time_clamped(self):
        wave = PeriodicSquareWave()
        assert wave.scale_at(-5.0) == wave.scale_at(0.0)

    def test_validation(self):
        with pytest.raises(Exception):
            PeriodicSquareWave(high_scale=1.5)
        with pytest.raises(Exception):
            PeriodicSquareWave(half_period=0.0)

    def test_paper_defaults(self):
        wave = PeriodicSquareWave()
        assert wave.low_scale == pytest.approx(345.0 / 2035.0)
        assert wave.half_period == 5.0


class TestGovernor:
    def test_governor_toggles_and_restores(self):
        env = Environment()
        machine = jetson_tx2()
        speed = SpeedModel(env, machine)
        wave = PeriodicSquareWave(1.0, 0.5, half_period=1.0)
        gov = DvfsGovernor(env, speed, [0, 1], wave=wave, until=3.5)
        env.run(until=10.0)
        assert gov.toggles == 3
        # Restored to high scale at the end.
        assert speed.freq_scale(0) == 1.0
        assert speed.freq_scale(1) == 1.0

    def test_governor_applies_low_scale_during_low_phase(self):
        env = Environment()
        machine = jetson_tx2()
        speed = SpeedModel(env, machine)
        wave = PeriodicSquareWave(1.0, 0.5, half_period=1.0)
        DvfsGovernor(env, speed, [0], wave=wave, until=10.0)
        env.run(until=1.5)
        assert speed.freq_scale(0) == 0.5
        assert speed.freq_scale(1) == 1.0  # untouched core

    def test_governor_needs_cores(self):
        env = Environment()
        machine = jetson_tx2()
        speed = SpeedModel(env, machine)
        with pytest.raises(ConfigurationError):
            DvfsGovernor(env, speed, [])


class TestInterconnect:
    def test_transfer_time(self):
        link = Interconnect(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Interconnect().transfer_time(-1)

    def test_validation(self):
        with pytest.raises(Exception):
            Interconnect(latency_s=0.0)


class TestGovernorWaveConsistency:
    def test_applied_scale_matches_wave_schedule(self):
        """At any probe time, the governor's applied frequency equals the
        wave's closed-form schedule."""
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=30, deadline=None)
        @given(probe=st.floats(min_value=0.01, max_value=9.99))
        def check(probe):
            env = Environment()
            machine = jetson_tx2()
            speed = SpeedModel(env, machine)
            wave = PeriodicSquareWave(1.0, 0.25, half_period=1.0)
            DvfsGovernor(env, speed, [0], wave=wave, until=10.0)
            env.run(until=probe)
            # Exactly at a toggle instant the governor may not have run yet
            # for that boundary; probe away from boundaries.
            if abs(probe - round(probe)) > 1e-6:
                assert speed.freq_scale(0) == wave.scale_at(probe)

        check()
