"""Tests for the scheduler policies (Table 1 semantics)."""

import pytest

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.da import DaScheduler, DamCScheduler, DamPScheduler
from repro.core.policies.fa import FaScheduler, FamCScheduler
from repro.core.policies.heft import DheftScheduler
from repro.core.policies.registry import (
    SCHEDULER_NAMES,
    make_scheduler,
    scheduler_feature_rows,
)
from repro.core.policies.rws import RwsScheduler, RwsmCScheduler
from repro.errors import ConfigurationError, SchedulingError
from repro.graph.task import Priority, Task
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import jetson_tx2
from repro.machine.topology import ExecutionPlace


@pytest.fixture
def tx2():
    return jetson_tx2()


def make_task(priority=Priority.LOW, type_name="k"):
    return Task(0, FixedWorkKernel(type_name, work=1.0), priority=priority)


def bound(policy, tx2, backlog=None):
    policy.bind(tx2, rng=0, clock=lambda: 0.0, backlog=backlog)
    return policy


class TestRegistry:
    def test_all_paper_schedulers_present(self):
        assert SCHEDULER_NAMES == (
            "rws", "rwsm-c", "fa", "fam-c", "da", "dam-c", "dam-p",
        )
        for name in SCHEDULER_NAMES + ("dheft",):
            assert isinstance(make_scheduler(name), SchedulerPolicy)

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("DAM-C"), DamCScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("magic")

    def test_feature_rows_match_table1(self):
        rows = {r[0]: r[1:] for r in scheduler_feature_rows()}
        assert rows["RWS"] == ("n/a", "No", "n/a")
        assert rows["RWSM-C"] == ("n/a", "Yes", "cost")
        assert rows["FA"] == ("fixed", "No", "n/a")
        assert rows["FAM-C"] == ("fixed", "Yes", "cost")
        assert rows["DA"] == ("dynamic", "No", "n/a")
        assert rows["DAM-C"] == ("dynamic", "Yes", "cost")
        assert rows["DAM-P"] == ("dynamic", "Yes", "performance")

    def test_kwargs_forwarded(self):
        policy = make_scheduler("dam-c", ptt_new_weight=3)
        assert policy.ptt_new_weight == 3


class TestRws:
    def test_rigid_local_placement(self, tx2):
        policy = bound(RwsScheduler(), tx2)
        assert policy.choose_place(make_task(), 3) == ExecutionPlace(3, 1)

    def test_everything_stealable(self, tx2):
        policy = bound(RwsScheduler(), tx2)
        assert policy.allow_steal(make_task(Priority.HIGH))
        assert policy.allow_steal(make_task(Priority.LOW))

    def test_no_ptt(self, tx2):
        policy = bound(RwsScheduler(), tx2)
        assert policy.ptt is None
        # on_complete must be a no-op, not a crash.
        policy.on_complete(make_task(), ExecutionPlace(0, 1), 1.0)

    def test_children_stay_local(self, tx2):
        policy = bound(RwsScheduler(), tx2)
        assert policy.on_ready(make_task(Priority.HIGH), waker_core=4) == 4


class TestRwsmC:
    def test_uses_local_width_search(self, tx2):
        policy = bound(RwsmCScheduler(), tx2)
        task = make_task()
        table = policy.table(task)
        for place in tx2.places:
            table.update(place, 1.0)
        table.update(ExecutionPlace(2, 2), 0.4)  # superlinear
        # Re-feed to dominate the weighted average.
        for _ in range(20):
            table.update(ExecutionPlace(2, 2), 0.4)
        assert policy.choose_place(task, 3) == ExecutionPlace(2, 2)

    def test_priority_still_stealable(self, tx2):
        policy = bound(RwsmCScheduler(), tx2)
        assert policy.allow_steal(make_task(Priority.HIGH))


class TestFa:
    def test_fast_cores_detected(self, tx2):
        policy = bound(FaScheduler(), tx2)
        assert policy.fast_cores() == (0, 1)

    def test_high_priority_round_robin_to_fast_cores(self, tx2):
        policy = bound(FaScheduler(), tx2)
        targets = [policy.on_ready(make_task(Priority.HIGH), 5) for _ in range(4)]
        assert targets == [0, 1, 0, 1]

    def test_low_priority_stays_local(self, tx2):
        policy = bound(FaScheduler(), tx2)
        assert policy.on_ready(make_task(), 4) == 4

    def test_high_priority_not_stealable(self, tx2):
        policy = bound(FaScheduler(), tx2)
        assert not policy.allow_steal(make_task(Priority.HIGH))
        assert policy.allow_steal(make_task(Priority.LOW))

    def test_rigid_placement(self, tx2):
        policy = bound(FaScheduler(), tx2)
        assert policy.choose_place(make_task(), 0) == ExecutionPlace(0, 1)

    def test_famc_molds_via_local_search(self, tx2):
        policy = bound(FamCScheduler(), tx2)
        task = make_task()
        # Unexplored -> explores width options at the dequeue core.
        place = policy.choose_place(task, 0)
        assert place.leader in (0, 1) or place == ExecutionPlace(0, 2)


class TestDynamicFamily:
    def _trained(self, policy, tx2, best=(1, 1), best_time=0.5):
        task = make_task(Priority.HIGH)
        table = policy.table(task)
        for place in tx2.places:
            table.update(place, 2.0)
        for _ in range(30):
            table.update(ExecutionPlace(*best), best_time)
        return task

    def test_da_targets_fastest_single_core(self, tx2):
        policy = bound(DaScheduler(), tx2)
        task = self._trained(policy, tx2, best=(1, 1))
        assert policy.choose_place(task, 4) == ExecutionPlace(1, 1)

    def test_da_never_molds(self, tx2):
        policy = bound(DaScheduler(), tx2)
        task = self._trained(policy, tx2, best=(1, 1))
        low = make_task(Priority.LOW)
        assert policy.choose_place(low, 3) == ExecutionPlace(3, 1)
        # Even the critical path uses width 1 only.
        assert policy.choose_place(task, 3).width == 1

    def test_damc_minimizes_cost(self, tx2):
        policy = bound(DamCScheduler(), tx2)
        task = make_task(Priority.HIGH)
        table = policy.table(task)
        for place in tx2.places:
            table.update(place, 1.0)
        # (2,4): time 0.4 -> cost 1.6; (1,1): time 0.8 -> cost 0.8.
        for _ in range(30):
            table.update(ExecutionPlace(2, 4), 0.4)
            table.update(ExecutionPlace(1, 1), 0.8)
        assert policy.choose_place(task, 0) == ExecutionPlace(1, 1)

    def test_damp_minimizes_time(self, tx2):
        policy = bound(DamPScheduler(), tx2)
        task = make_task(Priority.HIGH)
        table = policy.table(task)
        for place in tx2.places:
            table.update(place, 1.0)
        for _ in range(30):
            table.update(ExecutionPlace(2, 4), 0.4)
            table.update(ExecutionPlace(1, 1), 0.8)
        assert policy.choose_place(task, 0) == ExecutionPlace(2, 4)

    def test_high_priority_steal_exempt(self, tx2):
        for cls in (DaScheduler, DamCScheduler, DamPScheduler):
            policy = bound(cls(), tx2)
            assert not policy.allow_steal(make_task(Priority.HIGH))
            assert policy.allow_steal(make_task(Priority.LOW))

    def test_children_released_locally(self, tx2):
        """Wake-up keeps children on the waker; Algorithm 1 runs at dequeue."""
        for cls in (DaScheduler, DamCScheduler, DamPScheduler):
            policy = bound(cls(), tx2)
            assert policy.on_ready(make_task(Priority.HIGH), 5) == 5

    def test_low_priority_local_search(self, tx2):
        policy = bound(DamCScheduler(), tx2)
        low = make_task(Priority.LOW)
        place = policy.choose_place(low, 4)
        assert 4 in tx2.place_cores(place)

    def test_on_complete_trains_ptt(self, tx2):
        policy = bound(DamCScheduler(), tx2)
        task = make_task()
        policy.on_complete(task, ExecutionPlace(0, 1), 3.0)
        assert policy.table(task).predict(ExecutionPlace(0, 1)) == 3.0


class TestDheft:
    def test_explores_then_exploits(self, tx2):
        policy = bound(DheftScheduler(), tx2)
        task = make_task()
        # Feed: core 1 is fast for this type, others slow.
        for core in range(6):
            policy.on_complete(task, ExecutionPlace(core, 1), 0.5 if core == 1 else 2.0)
        # With knowledge present, earliest finish lands on core 1.
        clock = [0.0]
        policy._clock = lambda: clock[0]
        policy._available = [0.0] * 6
        assert policy.on_ready(task, 0) == 1

    def test_nothing_stealable(self, tx2):
        policy = bound(DheftScheduler(), tx2)
        assert not policy.allow_steal(make_task(Priority.LOW))

    def test_mean_profile_update(self, tx2):
        policy = bound(DheftScheduler(), tx2)
        task = make_task()
        policy.on_complete(task, ExecutionPlace(2, 1), 1.0)
        policy.on_complete(task, ExecutionPlace(2, 1), 3.0)
        mean, n = policy._profile[("k", 2)]
        assert mean == pytest.approx(2.0)
        assert n == 2


class TestBindContract:
    def test_unbound_policy_rejects_decisions(self):
        policy = DamCScheduler()
        with pytest.raises(SchedulingError):
            policy.choose_place(make_task(), 0)

    def test_ptt_absent_table_access_raises(self, tx2):
        policy = bound(RwsScheduler(), tx2)
        with pytest.raises(SchedulingError):
            policy.table(make_task())
