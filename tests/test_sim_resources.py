"""Tests for the Store channel primitive."""

from repro.sim.environment import Environment
from repro.sim.resources import Store


def test_put_then_get_immediate():
    env = Environment()
    store = Store(env)
    store.put("a")
    got = []

    def getter():
        value = yield store.get()
        got.append(value)

    env.process(getter())
    env.run()
    assert got == ["a"]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def getter():
        value = yield store.get()
        got.append((env.now, value))

    def putter():
        yield env.timeout(2.0)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert got == [(2.0, "late")]


def test_fifo_order_of_items():
    env = Environment()
    store = Store(env)
    for item in ("a", "b", "c"):
        store.put(item)
    got = []

    def getter():
        for _ in range(3):
            got.append((yield store.get()))

    env.process(getter())
    env.run()
    assert got == ["a", "b", "c"]


def test_fifo_order_of_waiters():
    env = Environment()
    store = Store(env)
    got = []

    def getter(name):
        value = yield store.get()
        got.append((name, value))

    env.process(getter("first"))
    env.process(getter("second"))

    def putter():
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(putter())
    env.run()
    assert got == [("first", 1), ("second", 2)]


def test_len_reflects_buffered_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put("x")
    assert len(store) == 1
