"""Tests for metrics and analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.task import Priority
from repro.machine.topology import ExecutionPlace
from repro.metrics.analysis import (
    average_wait_time,
    core_work_time,
    iteration_series,
    place_distribution,
    place_distribution_counts,
    place_series_by_iteration,
    priority_core_shares,
    throughput,
)
from repro.metrics.collector import TraceCollector
from repro.metrics.records import TaskRecord


def rec(tid, priority=Priority.LOW, place=(0, 1), ready=0.0, start=1.0,
        end=2.0, iteration=None):
    meta = {} if iteration is None else {"iteration": iteration}
    return TaskRecord(
        task_id=tid,
        type_name="k",
        priority=priority,
        place=ExecutionPlace(*place),
        ready_time=ready,
        dequeue_time=ready,
        exec_start=start,
        exec_end=end,
        observed=end - start,
        stolen=False,
        metadata=meta,
    )


class TestRecord:
    def test_derived_fields(self):
        r = rec(0, ready=0.5, start=1.0, end=3.0)
        assert r.duration == pytest.approx(2.0)
        assert r.wait_time == pytest.approx(0.5)
        assert not r.is_high_priority


class TestCollector:
    def test_busy_time_charged_to_members(self):
        c = TraceCollector(4)
        c.record_task(rec(0, place=(0, 2), start=0.0, end=3.0), (0, 1))
        assert c.core_busy[0] == 3.0
        assert c.core_busy[1] == 3.0
        assert c.core_busy[2] == 0.0
        assert len(c) == 1

    def test_steal_counters(self):
        c = TraceCollector(2)
        c.record_steal()
        c.record_failed_scan()
        assert c.steals == 1
        assert c.failed_steal_scans == 1


class TestAnalysis:
    def test_throughput(self):
        assert throughput([rec(0), rec(1)], makespan=2.0) == 1.0
        with pytest.raises(ConfigurationError):
            throughput([], makespan=0.0)

    def test_place_distribution_high_only(self):
        records = [
            rec(0, Priority.HIGH, place=(1, 1)),
            rec(1, Priority.HIGH, place=(1, 1)),
            rec(2, Priority.HIGH, place=(2, 4)),
            rec(3, Priority.LOW, place=(5, 1)),
        ]
        dist = place_distribution(records)
        assert dist[ExecutionPlace(1, 1)] == pytest.approx(2 / 3)
        assert dist[ExecutionPlace(2, 4)] == pytest.approx(1 / 3)
        assert ExecutionPlace(5, 1) not in dist

    def test_place_distribution_empty(self):
        assert place_distribution([rec(0, Priority.LOW)]) == {}

    def test_counts_include_low_when_asked(self):
        counts = place_distribution_counts(
            [rec(0, Priority.LOW)], high_priority_only=False
        )
        assert counts[ExecutionPlace(0, 1)] == 1

    def test_priority_core_shares_expands_width(self):
        records = [rec(0, Priority.HIGH, place=(2, 4))]
        shares = priority_core_shares(records)
        assert shares == {2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0}

    def test_iteration_series_span(self):
        records = [
            rec(0, iteration=0, ready=0.0, start=0.5, end=1.0),
            rec(1, iteration=0, ready=0.2, start=1.0, end=2.0),
            rec(2, iteration=1, ready=2.0, start=2.5, end=3.0),
        ]
        series = iteration_series(records)
        assert series == [(0, pytest.approx(2.0)), (1, pytest.approx(1.0))]

    def test_place_series_by_iteration(self):
        records = [
            rec(0, iteration=0, place=(0, 1)),
            rec(1, iteration=0, place=(0, 1)),
            rec(2, iteration=1, place=(2, 2)),
        ]
        series = place_series_by_iteration(records)
        assert series[ExecutionPlace(0, 1)] == {0: 2}
        assert series[ExecutionPlace(2, 2)] == {1: 1}

    def test_average_wait_time(self):
        records = [rec(0, ready=0.0, start=1.0), rec(1, ready=0.0, start=3.0)]
        assert average_wait_time(records) == pytest.approx(2.0)
        assert average_wait_time([]) is None

    def test_core_work_time_is_copy(self):
        busy = {0: 1.0}
        out = core_work_time(busy)
        out[0] = 99.0
        assert busy[0] == 1.0
