"""Tests for the Performance Trace Table (§4.1.1)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ptt import PerformanceTraceTable, PttStore
from repro.errors import ConfigurationError
from repro.machine.presets import jetson_tx2
from repro.machine.topology import ExecutionPlace


@pytest.fixture
def tx2():
    return jetson_tx2()


@pytest.fixture
def ptt(tx2):
    return PerformanceTraceTable(tx2)


class TestInitialization:
    def test_entries_start_at_zero(self, ptt, tx2):
        for place in tx2.places:
            assert ptt.predict(place) == 0.0
            assert ptt.samples(place) == 0
        assert ptt.explored_fraction() == 0.0

    def test_one_entry_per_place(self, ptt, tx2):
        assert len(list(ptt.entries())) == len(tx2.places)

    def test_invalid_weights_rejected(self, tx2):
        with pytest.raises(ConfigurationError):
            PerformanceTraceTable(tx2, new_weight=0)
        with pytest.raises(ConfigurationError):
            PerformanceTraceTable(tx2, new_weight=6, total_weight=5)

    def test_illegal_place_rejected(self, ptt):
        with pytest.raises(ConfigurationError):
            ptt.predict(ExecutionPlace(3, 2))


class TestUpdates:
    def test_first_sample_replaces_zero(self, ptt):
        place = ExecutionPlace(0, 1)
        assert ptt.update(place, 10.0) == 10.0
        assert ptt.predict(place) == 10.0

    def test_weighted_update_paper_rule(self, ptt):
        """updated = (4*old + new) / 5 — §4.1.1."""
        place = ExecutionPlace(0, 1)
        ptt.update(place, 10.0)
        assert ptt.update(place, 20.0) == pytest.approx(12.0)
        assert ptt.update(place, 20.0) == pytest.approx(13.6)

    def test_three_samples_to_cross_midpoint(self, ptt):
        """The paper's resilience property: after a performance change, at
        least three measurements are needed before the entry is closer to
        the new regime than the old."""
        place = ExecutionPlace(0, 1)
        for _ in range(10):
            ptt.update(place, 10.0)
        old = ptt.predict(place)
        values = [ptt.update(place, 30.0) for _ in range(4)]
        midpoint = (old + 30.0) / 2
        # Three samples still sit on the old regime's side...
        assert values[0] < midpoint
        assert values[1] < midpoint
        assert values[2] < midpoint
        # ...only the fourth crosses the midpoint.
        assert values[3] >= midpoint

    def test_heavier_weight_adapts_faster(self, tx2):
        slow = PerformanceTraceTable(tx2, new_weight=1, total_weight=5)
        fast = PerformanceTraceTable(tx2, new_weight=4, total_weight=5)
        place = ExecutionPlace(0, 1)
        for table in (slow, fast):
            table.update(place, 10.0)
            table.update(place, 30.0)
        assert fast.predict(place) > slow.predict(place)

    def test_negative_observation_rejected(self, ptt):
        with pytest.raises(ConfigurationError):
            ptt.update(ExecutionPlace(0, 1), -1.0)

    def test_samples_counted(self, ptt):
        place = ExecutionPlace(2, 4)
        for i in range(5):
            ptt.update(place, 1.0)
        assert ptt.samples(place) == 5
        assert ptt.explored_fraction() == pytest.approx(1 / 10)

    def test_fixed_point(self, ptt):
        """Updating with the current value leaves it unchanged."""
        place = ExecutionPlace(4, 2)
        ptt.update(place, 7.0)
        for _ in range(3):
            assert ptt.update(place, 7.0) == pytest.approx(7.0)

    def test_value_bounded_by_sample_range(self, ptt):
        place = ExecutionPlace(0, 2)
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        for s in samples:
            ptt.update(place, s)
        assert min(samples) <= ptt.predict(place) <= max(samples)


class TestPttStore:
    def test_one_table_per_type(self, tx2):
        store = PttStore(tx2)
        a = store.table("matmul")
        b = store.table("copy")
        assert a is not b
        assert store.table("matmul") is a
        assert len(store) == 2
        assert set(store.known_types()) == {"matmul", "copy"}

    def test_store_propagates_weights(self, tx2):
        store = PttStore(tx2, new_weight=2, total_weight=5)
        table = store.table("x")
        place = ExecutionPlace(0, 1)
        table.update(place, 10.0)
        assert table.update(place, 20.0) == pytest.approx(14.0)


class TestRunsAxis:
    """Runs-axis round-trips over the stacked batch store.

    The lockstep driver reads placement inputs with
    ``predict_all_runs`` and folds grouped commits with
    ``update_slot_runs(rows=...)`` — a *subset* of runs per call.  Both
    must agree exactly with per-run scalar table operations on the same
    data, leaving unselected rows untouched.
    """

    @given(
        runs=st.integers(min_value=1, max_value=5),
        steps=st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=4),
                    min_size=1, max_size=5, unique=True,
                ),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_subset_folds_equal_scalar_loop(self, runs, steps):
        from repro.core.batched import BatchedPttStore

        machine = jetson_tx2()
        n_slots = len(machine.places)
        batched = BatchedPttStore(machine, runs)
        shadow = BatchedPttStore(machine, runs)
        shadow_tables = [
            shadow.store_for(run).table("k") for run in range(runs)
        ]
        for raw_rows, salt in steps:
            rows = sorted({r % runs for r in raw_rows})
            draw = random.Random(salt)
            slots = [draw.randrange(n_slots) for _ in rows]
            observed = [draw.uniform(0.0, 1e3) for _ in rows]
            folded = batched.update_slot_runs(
                "k", slots, observed, rows=rows
            )
            expected = [
                shadow_tables[run].update_slot(slot, obs)
                for run, slot, obs in zip(rows, slots, observed)
            ]
            assert folded.tolist() == expected
        np.testing.assert_array_equal(
            batched.predict_all_runs("k"), shadow.predict_all_runs("k")
        )
        np.testing.assert_array_equal(
            batched.samples_all_runs("k"), shadow.samples_all_runs("k")
        )
        # Per-run scalar views read back exactly what the runs-axis
        # writer folded (shared storage, no copies).
        for run in range(runs):
            view = batched.store_for(run).table("k")
            assert view._values_list == shadow_tables[run]._values_list

    def test_rows_validation(self):
        from repro.core.batched import BatchedPttStore

        store = BatchedPttStore(jetson_tx2(), 3)
        with pytest.raises(ConfigurationError):
            store.update_slot_runs("k", [0], [1.0], rows=[3])
        with pytest.raises(ConfigurationError):
            store.update_slot_runs("k", [0], [1.0], rows=[-1])
        with pytest.raises(ConfigurationError):
            store.update_slot_runs("k", [0, 1], [1.0], rows=[0])
