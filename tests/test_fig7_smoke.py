"""Smoke test of the Fig. 7 harness at reduced DVFS floors.

The real harness floors its task counts so each run spans several DVFS
periods, which is too slow for unit tests; here the floors are patched
down while keeping the structural path identical.
"""

import pytest

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig7_dvfs import run_fig7


@pytest.fixture
def fast_settings(monkeypatch):
    settings = ExperimentSettings(scale=0.01)
    monkeypatch.setattr(
        ExperimentSettings,
        "dvfs_task_count",
        lambda self, kernel, parallelism: 400,
    )
    monkeypatch.setattr(
        ExperimentSettings,
        "dvfs_wave",
        lambda self: __import__(
            "repro.machine.dvfs", fromlist=["PeriodicSquareWave"]
        ).PeriodicSquareWave(half_period=0.05),
    )
    return settings


def test_fig7_structure(fast_settings):
    result = run_fig7(
        fast_settings,
        kernels=("matmul",),
        parallelisms=(2, 4),
        schedulers=("rws", "dam-c"),
    )
    data = result.throughput["matmul"]
    assert set(data) == {"rws", "dam-c"}
    assert all(v > 0 for by in data.values() for v in by.values())
    assert "Fig 7" in result.report()


def test_fig7_headline_skips_missing_bases(fast_settings):
    result = run_fig7(
        fast_settings,
        kernels=("copy",),
        parallelisms=(2,),
        schedulers=("rws", "dam-c"),
    )
    ratios = result.headline_ratios("copy")
    assert set(ratios) == {"dam-c/rws"}


def test_fig7_headline_empty_without_damc(fast_settings):
    result = run_fig7(
        fast_settings,
        kernels=("copy",),
        parallelisms=(2,),
        schedulers=("rws",),
    )
    assert result.headline_ratios("copy") == {}
