"""Tests for core time-sharing and the live co-runner application."""

import pytest

from repro.core.policies.pinned import PinnedScheduler
from repro.errors import ConfigurationError
from repro.graph.generators import chain_dag
from repro.interference.corunner import CorunnerInterference
from repro.interference.live import LiveCorunner
from repro.kernels.copy import CopyKernel
from repro.kernels.fixed import FixedWorkKernel
from repro.kernels.matmul import MatMulKernel
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.metrics.analysis import place_distribution
from repro.session import quick_run
from repro.sim.environment import Environment


class TestTimeSharing:
    def test_two_works_share_a_core(self):
        """Two concurrent work items on one core each run at half rate."""
        env = Environment()
        speed = SpeedModel(env, jetson_tx2())
        w1 = speed.begin_work([2], work=1.0)  # A57 core, speed 1
        w2 = speed.begin_work([2], work=1.0)
        times = []
        w1.done.callbacks.append(lambda e: times.append(env.now))
        w2.done.callbacks.append(lambda e: times.append(env.now))
        env.run()
        # Each progresses at 0.5 -> both done at t=2 (perfect fair slicing).
        assert times == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_departure_restores_full_rate(self):
        env = Environment()
        speed = SpeedModel(env, jetson_tx2())
        w1 = speed.begin_work([2], work=0.5)
        w2 = speed.begin_work([2], work=1.0)
        times = {}
        w1.done.callbacks.append(lambda e: times.setdefault("w1", env.now))
        w2.done.callbacks.append(lambda e: times.setdefault("w2", env.now))
        env.run()
        # Shared until w1 finishes at t=1 (0.5 work at rate 0.5); w2 then
        # has 0.5 left at full rate -> t=1.5.
        assert times["w1"] == pytest.approx(1.0)
        assert times["w2"] == pytest.approx(1.5)

    def test_active_count_tracking(self):
        env = Environment()
        speed = SpeedModel(env, jetson_tx2())
        assert speed.active_on_core(2) == 0
        speed.begin_work([2], work=1.0)
        speed.begin_work([2, 3], work=1.0)
        assert speed.active_on_core(2) == 2
        assert speed.active_on_core(3) == 1
        env.run()
        assert speed.active_on_core(2) == 0

    def test_single_runtime_unaffected(self):
        """A lone runtime never oversubscribes, so time-sharing changes
        nothing for all existing behaviour."""
        result = quick_run(scheduler="dam-c", parallelism=3, total_tasks=90)
        assert result.tasks_completed == 90


class TestPinnedScheduler:
    def test_places_everything_on_core(self):
        env = Environment()
        machine = jetson_tx2()
        from repro.runtime.executor import SimulatedRuntime
        graph = chain_dag(FixedWorkKernel("k", 1e-3), 10)
        runtime = SimulatedRuntime(env, machine, graph, PinnedScheduler(3))
        runtime.run()
        assert all(
            r.place.leader == 3 and r.place.width == 1
            for r in runtime.collector.records
        )

    def test_invalid_core_rejected(self):
        with pytest.raises(ConfigurationError):
            PinnedScheduler(-1)
        env = Environment()
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            sched = PinnedScheduler(99)
            sched.bind(jetson_tx2())


class TestLiveCorunner:
    def test_background_chain_executes(self):
        scenario = LiveCorunner(core=0)
        result = quick_run(
            scheduler="dam-c", kernel="matmul", parallelism=2,
            total_tasks=200, scenario=scenario,
        )
        assert result.tasks_completed == 200
        assert scenario.tasks_completed > 10  # the co-runner really ran

    def test_foreground_avoids_live_interference(self):
        """DAM-C steers criticals off the core the live co-runner holds —
        the paper's mechanism, with no modelled share factor anywhere."""
        scenario = LiveCorunner(core=0)
        result = quick_run(
            scheduler="dam-c", kernel="matmul", parallelism=2,
            total_tasks=400, scenario=scenario,
        )
        dist = place_distribution(result.collector.records)
        on_core0 = sum(
            v for p, v in dist.items()
            if p.leader <= 0 < p.leader + p.width
        )
        assert on_core0 < 0.05

    def test_live_vs_modeled_agree_on_ranking(self):
        """The live co-runner and the share-model co-runner produce the
        same scheduler ranking (the model is a faithful substitution)."""
        def throughputs(scenario_factory):
            out = {}
            for sched in ("rws", "dam-c"):
                out[sched] = quick_run(
                    scheduler=sched, kernel="matmul", parallelism=2,
                    total_tasks=300, scenario=scenario_factory(),
                ).throughput
            return out

        live = throughputs(lambda: LiveCorunner(core=0))
        modeled = throughputs(
            lambda: CorunnerInterference.matmul_chain([0])
        )
        assert live["dam-c"] > live["rws"]
        assert modeled["dam-c"] > modeled["rws"]
        # Both put DAM-C ahead by a broadly similar factor.
        live_ratio = live["dam-c"] / live["rws"]
        modeled_ratio = modeled["dam-c"] / modeled["rws"]
        assert live_ratio / modeled_ratio == pytest.approx(1.0, abs=0.5)

    def test_memory_corunner_uses_copy_kernel(self):
        scenario = LiveCorunner(core=0, kernel=CopyKernel())
        result = quick_run(
            scheduler="dam-c", kernel="copy", parallelism=2,
            total_tasks=150, scenario=scenario,
        )
        assert result.tasks_completed == 150

    def test_delayed_start(self):
        scenario = LiveCorunner(core=0, start=0.05)
        result = quick_run(
            scheduler="rws", kernel="matmul", parallelism=2,
            total_tasks=200, scenario=scenario,
        )
        assert result.tasks_completed == 200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LiveCorunner(core=-1)
        with pytest.raises(ConfigurationError):
            LiveCorunner(start=-1.0)
