"""Tests for kernel cost models and real implementations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.base import WorkProfile
from repro.kernels.copy import CopyKernel
from repro.kernels.fixed import FixedWorkKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.real import run_copy, run_matmul, run_stencil, time_kernel
from repro.kernels.stencil import StencilKernel
from repro.machine.presets import jetson_tx2
from repro.machine.topology import ExecutionPlace


@pytest.fixture
def tx2():
    return jetson_tx2()


class TestWorkProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkProfile(-1.0, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            WorkProfile(1.0, 1.5, 0.0)
        with pytest.raises(ConfigurationError):
            WorkProfile(1.0, 0.5, -1.0)


class TestMatMulModel:
    def test_work_scales_cubically(self):
        small, big = MatMulKernel(tile=32), MatMulKernel(tile=64)
        assert big.seq_work() / small.seq_work() == pytest.approx(8.0)

    def test_paper_l1_classification(self, tx2):
        """§5.3: tile 32 fits both L1s; 64 and 80 only Denver; 96 spills."""
        denver = ExecutionPlace(0, 1)
        a57 = ExecutionPlace(2, 1)
        assert MatMulKernel(tile=32).cache_penalty(tx2, denver) == 1.0
        assert MatMulKernel(tile=32).cache_penalty(tx2, a57) == 1.0
        for tile in (64, 80):
            k = MatMulKernel(tile=tile)
            assert k.cache_penalty(tx2, denver) == 1.0
            assert k.cache_penalty(tx2, a57) > 1.0
        k96 = MatMulKernel(tile=96)
        assert k96.cache_penalty(tx2, denver) > 1.0

    def test_molding_shrinks_per_core_slice(self, tx2):
        k = MatMulKernel(tile=96)
        wide = ExecutionPlace(2, 4)
        narrow = ExecutionPlace(2, 1)
        assert k.cache_penalty(tx2, wide) < k.cache_penalty(tx2, narrow)

    def test_profile_work_decreases_with_width_then_overhead_bites(self, tx2):
        k = MatMulKernel(tile=64)
        w1 = k.profile(tx2, ExecutionPlace(2, 1)).work
        w2 = k.profile(tx2, ExecutionPlace(2, 2)).work
        assert w2 < w1  # per-assembly work shrinks (duration shorter)

    def test_profile_validates_place(self, tx2):
        with pytest.raises(Exception):
            MatMulKernel().profile(tx2, ExecutionPlace(3, 2))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            MatMulKernel(tile=0)
        with pytest.raises(ConfigurationError):
            MatMulKernel(flop_cost=0)

    def test_type_name_includes_tile(self):
        assert MatMulKernel(tile=80).name == "matmul80"


class TestCopyModel:
    def test_memory_intensity_high(self, tx2):
        k = CopyKernel()
        assert k.memory_intensity(tx2, ExecutionPlace(2, 1)) == pytest.approx(0.9)

    def test_no_cache_penalty(self, tx2):
        k = CopyKernel()
        assert k.cache_penalty(tx2, ExecutionPlace(2, 1)) == 1.0

    def test_demand_scales_with_width(self, tx2):
        k = CopyKernel()
        d1 = k.profile(tx2, ExecutionPlace(2, 1)).demand
        d4 = k.profile(tx2, ExecutionPlace(2, 4)).demand
        assert d4 == pytest.approx(4 * d1)

    def test_bytes_moved(self):
        k = CopyKernel(tile=1024)
        assert k.bytes_moved() == 2 * 1024 * 1024 * 8


class TestStencilModel:
    def test_intensity_rises_when_spilling(self, tx2):
        k = StencilKernel(tile=1024)
        narrow = k.memory_intensity(tx2, ExecutionPlace(2, 1))
        wide = k.memory_intensity(tx2, ExecutionPlace(2, 4))
        assert narrow >= wide

    def test_work_scales_with_sweeps(self):
        assert StencilKernel(sweeps=8).seq_work() == pytest.approx(
            2 * StencilKernel(sweeps=4).seq_work()
        )


class TestFixedWorkKernel:
    def test_rigid_kernel_never_benefits_from_width(self, tx2):
        k = FixedWorkKernel("rigid", work=1.0, parallel_fraction=0.0)
        t1 = k.profile(tx2, ExecutionPlace(2, 1)).work
        t4 = k.profile(tx2, ExecutionPlace(2, 4)).work
        assert t4 > t1

    def test_custom_penalties(self, tx2):
        k = FixedWorkKernel(
            "cliff", work=1.0, working_set=64 * 1024 * 1024,
            l2_penalty=1.1, dram_penalty=4.0,
        )
        assert k.cache_penalty(tx2, ExecutionPlace(2, 1)) == 4.0

    def test_penalty_validation(self):
        with pytest.raises(ConfigurationError):
            FixedWorkKernel("x", 1.0, l2_penalty=0.5)
        with pytest.raises(ConfigurationError):
            FixedWorkKernel("x", 1.0, l2_penalty=2.0, dram_penalty=1.5)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            FixedWorkKernel("x", -1.0)
        with pytest.raises(ConfigurationError):
            FixedWorkKernel("x", 1.0, parallel_fraction=1.2)
        with pytest.raises(ConfigurationError):
            FixedWorkKernel("x", 1.0, memory_intensity=-0.1)


class TestRealKernels:
    def test_matmul_correctness(self):
        out = run_matmul(16, rng=0)
        assert out.shape == (16, 16)
        # a @ b of uniform [0,1) entries: each element ~ sum of 16 products.
        assert 0 < out.mean() < 16

    def test_copy_is_exact(self):
        out = run_copy(32, rng=1)
        assert out.shape == (32, 32)

    def test_stencil_preserves_shape_and_smooths(self):
        grid = run_stencil(32, sweeps=2, rng=0)
        assert grid.shape == (32, 32)
        fresh = run_stencil(32, sweeps=8, rng=0)
        # More sweeps -> smoother interior (lower variance).
        assert fresh[1:-1, 1:-1].var() < grid[1:-1, 1:-1].var()

    def test_stencil_matches_manual_average(self):
        # One sweep on a tiny grid equals the direct formula.
        from repro.util.rng import make_rng
        gen = make_rng(5)
        src = gen.random((8, 8))
        expected = src.copy()
        expected[1:-1, 1:-1] = 0.2 * (
            src[1:-1, 1:-1] + src[:-2, 1:-1] + src[2:, 1:-1]
            + src[1:-1, :-2] + src[1:-1, 2:]
        )
        got = run_stencil(8, sweeps=1, rng=5)
        assert np.allclose(got, expected)

    def test_time_kernel_returns_positive(self):
        median, best = time_kernel("matmul", 32, repeats=2)
        assert best > 0
        assert median >= best

    def test_time_kernel_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            time_kernel("fft", 32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_matmul(0)
        with pytest.raises(ConfigurationError):
            run_stencil(2)


class TestCalibration:
    def test_calibrate_produces_positive_constants(self):
        from repro.kernels.calibrate import calibrate, calibrated_kernels
        res = calibrate(matmul_tile=32, copy_tile=128, stencil_tile=128,
                        repeats=2)
        assert res.flop_cost > 0
        assert res.byte_cost > 0
        assert res.point_cost > 0
        kernels = calibrated_kernels(res)
        assert set(kernels) == {"matmul", "copy", "stencil"}
        # The fitted matmul cost reproduces the measured time at the
        # calibration tile.
        assert kernels["matmul"].flop_cost * 64**3 == pytest.approx(
            res.flop_cost * 64**3
        )
