"""Tests for the application workloads."""

import numpy as np
import pytest

from repro.apps.heat import HeatConfig, build_heat_graph_builder, reference_heat
from repro.apps.kmeans import KMeansConfig, build_kmeans_graph, reference_kmeans
from repro.apps.synthetic import (
    PAPER_TASK_COUNTS,
    paper_copy_dag,
    paper_matmul_dag,
    paper_stencil_dag,
    synthetic_workloads,
)
from repro.core.policies.registry import make_scheduler
from repro.distributed.cluster_runtime import DistributedRuntime
from repro.errors import ConfigurationError
from repro.machine.presets import haswell16, haswell_node, jetson_tx2
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment


class TestSynthetic:
    def test_paper_task_counts(self):
        assert PAPER_TASK_COUNTS == {
            "matmul": 32000, "copy": 10000, "stencil": 20000,
        }

    def test_scaled_counts(self):
        g = paper_matmul_dag(4, scale=0.01)
        assert g.total_tasks == 320
        assert g.dag_parallelism() == pytest.approx(4.0)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            paper_copy_dag(2, scale=0.0)
        with pytest.raises(ConfigurationError):
            paper_stencil_dag(2, scale=1.5)

    def test_minimum_one_layer(self):
        g = paper_matmul_dag(6, scale=1e-9)
        assert g.total_tasks == 6

    def test_registry_complete(self):
        assert set(synthetic_workloads) == {"matmul", "copy", "stencil"}


class TestKMeansConfig:
    def test_partition_sizes_sum(self):
        cfg = KMeansConfig(n_points=1000, partitions=7, skew=2.0)
        sizes = cfg.partition_sizes()
        assert sum(sizes) == 1000
        assert max(sizes) == sizes[0]  # partition 0 is skewed

    def test_skewed_partition_roughly_scaled(self):
        cfg = KMeansConfig(n_points=100_000, partitions=10, skew=1.5)
        sizes = cfg.partition_sizes()
        assert sizes[0] / sizes[1] == pytest.approx(1.5, rel=0.05)

    def test_assign_work_monotone(self):
        cfg = KMeansConfig()
        assert cfg.assign_work(1000) < cfg.assign_work(2000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KMeansConfig(n_points=0)
        with pytest.raises(ConfigurationError):
            KMeansConfig(skew=0.5)
        with pytest.raises(ConfigurationError):
            KMeansConfig(iterations=0)


class TestKMeansGraph:
    def test_dynamic_expansion(self):
        cfg = KMeansConfig(iterations=3, partitions=4)
        g = build_kmeans_graph(cfg)
        # Only iteration 0 exists up front.
        assert g.total_tasks == 4 + 1

    def test_executes_all_iterations(self):
        cfg = KMeansConfig(iterations=5, partitions=4)
        g = build_kmeans_graph(cfg)
        env = Environment()
        runtime = SimulatedRuntime(
            env, haswell16(), g, make_scheduler("dam-c")
        )
        result = runtime.run()
        assert result.tasks_completed == 5 * (4 + 1)
        iters = {r.metadata["iteration"] for r in runtime.collector.records}
        assert iters == set(range(5))

    def test_priority_structure(self):
        cfg = KMeansConfig(iterations=1, partitions=4)
        g = build_kmeans_graph(cfg)
        tasks = list(g.tasks())
        highs = [t for t in tasks if t.is_high_priority]
        # The skewed partition plus the update task.
        assert len(highs) == 2
        assert any(t.metadata.get("role") == "update" for t in highs)
        assert any(t.metadata.get("partition") == 0 for t in highs)

    def test_iteration_hooks_fire_once_each(self):
        fired = []
        cfg = KMeansConfig(iterations=4, partitions=2)
        g = build_kmeans_graph(
            cfg, iteration_hooks={2: lambda i: fired.append(i)}
        )
        env = Environment()
        SimulatedRuntime(env, haswell16(), g, make_scheduler("rws")).run()
        assert fired == [2]


class TestKMeansReference:
    def test_converges_on_separable_data(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.2, size=(50, 2))
        b = rng.normal(5.0, 0.2, size=(50, 2))
        data = np.vstack([a, b])
        centroids, labels, inertia = reference_kmeans(data, 2, iterations=10)
        # The two blobs are separated.
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]
        assert inertia < 50.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reference_kmeans(np.zeros(5), 2)
        with pytest.raises(ConfigurationError):
            reference_kmeans(np.zeros((5, 2)), 6)


class TestHeatConfig:
    def test_rows_must_divide(self):
        with pytest.raises(ConfigurationError):
            HeatConfig(rows=100, nodes=3)

    def test_boundary_bytes(self):
        cfg = HeatConfig(rows=1024, cols=512, nodes=4)
        assert cfg.boundary_bytes == 512 * 8

    def test_compute_work_positive(self):
        assert HeatConfig().compute_work() > 0


class TestHeatGraph:
    def _run(self, scheduler="dam-c", nodes=2, iterations=4):
        cfg = HeatConfig(rows=2048, cols=2048, nodes=nodes,
                         partitions=4, iterations=iterations)
        runtime = DistributedRuntime(
            [haswell_node() for _ in range(nodes)],
            scheduler,
            build_heat_graph_builder(cfg),
        )
        return cfg, runtime, runtime.run()

    def test_all_tasks_complete(self):
        cfg, runtime, result = self._run()
        per_node = cfg.iterations * (cfg.partitions + 1)  # 1 neighbour each
        assert result.tasks_completed == 2 * per_node

    def test_exchanges_are_high_priority(self):
        _cfg, runtime, _result = self._run()
        for rt in runtime.runtimes:
            for rec in rt.collector.records:
                if rec.metadata.get("role") == "exchange":
                    assert rec.is_high_priority
                else:
                    assert not rec.is_high_priority

    def test_message_count(self):
        cfg, _runtime, result = self._run(nodes=2, iterations=4)
        # 2 ranks x 1 neighbour x iterations messages.
        assert result.messages == 2 * cfg.iterations

    def test_interior_node_has_two_exchanges(self):
        cfg = HeatConfig(rows=4096, cols=1024, nodes=4, partitions=4,
                         iterations=2)
        runtime = DistributedRuntime(
            [haswell_node() for _ in range(4)],
            "rws",
            build_heat_graph_builder(cfg),
        )
        runtime.run()
        mid = runtime.runtimes[1].collector.records
        exchanges = [r for r in mid if r.metadata.get("role") == "exchange"]
        assert len(exchanges) == 2 * cfg.iterations

    def test_iterations_pipeline_in_order_per_strip(self):
        _cfg, runtime, _result = self._run(nodes=2, iterations=4)
        recs = runtime.runtimes[0].collector.records
        by_strip = {}
        for rec in recs:
            if rec.metadata.get("role") == "compute":
                by_strip.setdefault(rec.metadata["partition"], []).append(rec)
        for strip, items in by_strip.items():
            items.sort(key=lambda r: r.metadata["iteration"])
            ends = [r.exec_end for r in items]
            assert ends == sorted(ends), f"strip {strip} out of order"


class TestHeatReference:
    def test_jacobi_converges_toward_boundary_value(self):
        grid = np.zeros((16, 16))
        out = reference_heat(grid, iterations=200, boundary=1.0)
        assert out[8, 8] > 0.5
        assert out[0, 0] == 1.0

    def test_uniform_grid_is_fixed_point(self):
        grid = np.full((8, 8), 3.0)
        out = reference_heat(grid, iterations=5)
        assert np.allclose(out, 3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reference_heat(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            reference_heat(np.zeros((8, 8)), iterations=-1)
