"""Tests for the speed model's work integration and contention."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


def finish_times(env, *works):
    """Attach completion recorders; returns a list filled at completion."""
    out = []
    for work in works:
        work.done.callbacks.append(
            lambda e, w=work: out.append((w.work_id, env.now, e.value))
        )
    return out


class TestBasicIntegration:
    def test_constant_rate(self, env, speed):
        work = speed.begin_work([1], work=4.0)  # Denver core, speed 2
        out = finish_times(env, work)
        env.run()
        assert out == [(work.work_id, 2.0, 2.0)]

    def test_rate_change_mid_flight(self, env, speed):
        work = speed.begin_work([0], work=4.0)  # speed 2
        out = finish_times(env, work)

        def scenario():
            yield env.timeout(1.0)          # 2 units done
            speed.set_cpu_share([0], 0.5)   # rate 1 -> 2 more units in 2 s
        env.process(scenario())
        env.run()
        assert out[0][1] == pytest.approx(3.0)

    def test_rate_recovery(self, env, speed):
        speed.set_cpu_share([0], 0.5)
        work = speed.begin_work([0], work=4.0)  # rate 1
        out = finish_times(env, work)

        def scenario():
            yield env.timeout(1.0)          # 1 unit done
            speed.set_cpu_share([0], 1.0)   # rate 2 -> 3 units in 1.5 s
        env.process(scenario())
        env.run()
        assert out[0][1] == pytest.approx(2.5)

    def test_zero_work_completes_instantly(self, env, speed):
        work = speed.begin_work([0], work=0.0)
        assert work.done.triggered
        assert work.done.value == 0.0

    def test_assembly_runs_at_slowest_member(self, env, speed):
        # Denver core 0 (speed 2) + under co-runner share 0.5 -> rate 1.
        speed.set_cpu_share([0], 0.5)
        work = speed.begin_work([0, 1], work=3.0)
        out = finish_times(env, work)
        env.run()
        assert out[0][1] == pytest.approx(3.0)

    def test_multiple_independent_works(self, env, speed):
        w1 = speed.begin_work([0], work=2.0)  # 1 s at rate 2
        w2 = speed.begin_work([2], work=2.0)  # 2 s at rate 1 (A57)
        out = finish_times(env, w1, w2)
        env.run()
        assert {(t, v) for _i, t, v in out} == {(1.0, 1.0), (2.0, 2.0)}


class TestValidation:
    def test_empty_cores_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.begin_work([], work=1.0)

    def test_negative_work_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.begin_work([0], work=-1.0)

    def test_cross_domain_work_rejected(self):
        env = Environment()
        machine = symmetric_machine(2, 4)
        model = SpeedModel(env, machine)
        with pytest.raises(ConfigurationError):
            model.begin_work([0, 4], work=1.0)  # socket0 + socket1

    def test_bad_share_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.set_cpu_share([0], 0.0)
        with pytest.raises(ConfigurationError):
            speed.set_cpu_share([0], 1.5)

    def test_bad_freq_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.set_freq_scale([0], 0.0)

    def test_unknown_domain_demand_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.add_external_demand("nope", 1.0)

    def test_negative_demand_rejected(self, speed):
        with pytest.raises(ConfigurationError):
            speed.add_external_demand("dram", -1.0)

    def test_demand_underflow_rejected(self, speed):
        speed.add_external_demand("dram", 1.0)
        from repro.errors import RuntimeStateError
        with pytest.raises(RuntimeStateError):
            speed.remove_external_demand("dram", 2.0)


class TestMemoryContention:
    def test_oversubscribed_domain_slows_memory_bound_work(self, env, tx2):
        speed = SpeedModel(env, tx2)  # dram capacity 4.0
        # Fully memory-bound work with demand saturating the domain twice.
        work = speed.begin_work([2], work=1.0, memory_intensity=1.0, demand=8.0)
        out = finish_times(env, work)
        env.run()
        # factor = 4/8 = 0.5 -> rate = 1 * 0.5 -> 2 s instead of 1 s.
        assert out[0][1] == pytest.approx(2.0)

    def test_compute_bound_work_ignores_contention(self, env, tx2):
        speed = SpeedModel(env, tx2)
        speed.add_external_demand("dram", 100.0)
        work = speed.begin_work([2], work=1.0, memory_intensity=0.0)
        out = finish_times(env, work)
        env.run()
        assert out[0][1] == pytest.approx(1.0)

    def test_departing_work_releases_bandwidth(self, env, tx2):
        speed = SpeedModel(env, tx2)
        # First work holds demand 4 (saturates); second is memory-bound.
        w1 = speed.begin_work([2], work=1.0, memory_intensity=1.0, demand=4.0)
        w2 = speed.begin_work([3], work=2.0, memory_intensity=1.0, demand=4.0)
        out = finish_times(env, w1, w2)
        env.run()
        # While both run: total demand 8 > 4, each at factor 0.5.
        # w1 finishes at t=2 (1 unit at rate 0.5); w2 then has 1 unit left
        # at factor 1 -> finishes at t=3.
        times = {i: t for i, t, _v in out}
        assert times[w1.work_id] == pytest.approx(2.0)
        assert times[w2.work_id] == pytest.approx(3.0)

    def test_external_demand_add_remove_roundtrip(self, env, tx2):
        speed = SpeedModel(env, tx2)
        speed.add_external_demand("dram", 2.5)
        speed.remove_external_demand("dram", 2.5)
        assert speed.external_demand("dram") == pytest.approx(0.0)


class TestWorkConservation:
    def test_total_work_conserved_under_many_changes(self, env, tx2):
        """Whatever the rate schedule, integrated work equals the input."""
        speed = SpeedModel(env, tx2)
        work = speed.begin_work([0], work=5.0)
        out = finish_times(env, work)

        def choppy():
            shares = [0.3, 0.7, 0.5, 1.0, 0.2, 0.9]
            for share in shares:
                yield env.timeout(0.4)
                speed.set_cpu_share([0], share)

        env.process(choppy())
        env.run()
        # Reconstruct the integral from the known schedule.
        finish = out[0][1]
        schedule = [(0.0, 2.0)] + [
            (0.4 * (i + 1), 2.0 * s)
            for i, s in enumerate([0.3, 0.7, 0.5, 1.0, 0.2, 0.9])
        ]
        total = 0.0
        for (t0, r), (t1, _r2) in zip(schedule, schedule[1:] + [(finish, 0)]):
            total += r * (max(0.0, min(finish, t1) - t0))
        assert total == pytest.approx(5.0, rel=1e-6)


class TestBatchedTransitions:
    """The ``batch()`` context: one grouped re-timing pass per burst."""

    @staticmethod
    def _drive(tx2, batched):
        """Run three works through two transition bursts; returns
        ``(index, finish_time, integrated_work)`` per work."""
        env = Environment()
        speed = SpeedModel(env, tx2)
        works = [
            speed.begin_work([0], work=4.0),
            speed.begin_work([2], work=3.0, memory_intensity=1.0,
                             demand=2.0),
            speed.begin_work([3], work=2.0, memory_intensity=0.5,
                             demand=1.0),
        ]
        out = []
        for index, work in enumerate(works):
            work.done.callbacks.append(
                lambda e, i=index: out.append((i, env.now, e.value))
            )

        def burst(apply):
            if batched:
                with speed.batch():
                    apply()
            else:
                apply()

        def scenario():
            yield env.timeout(0.5)

            def degrade():
                speed.set_cpu_share([0, 2], 0.5)
                speed.add_external_demand("dram", 3.0)
                speed.set_freq_scale([3], 0.8)
            burst(degrade)
            yield env.timeout(0.7)

            def restore():
                speed.set_cpu_share([0, 2], 1.0)
                speed.remove_external_demand("dram", 3.0)
                speed.set_freq_scale([3], 1.0)
            burst(restore)

        env.process(scenario())
        env.run()
        return sorted(out)

    def test_batch_matches_sequential_transitions(self, tx2):
        """A batched burst lands every in-flight work at the same times
        as the same transitions applied one by one."""
        sequential = self._drive(tx2, batched=False)
        batched = self._drive(tx2, batched=True)
        assert len(batched) == len(sequential) == 3
        for (i_a, t_a, v_a), (i_b, t_b, v_b) in zip(batched, sequential):
            assert i_a == i_b
            assert t_a == pytest.approx(t_b, rel=1e-12)
            assert v_a == pytest.approx(v_b, rel=1e-12)

    def test_net_zero_batch_changes_nothing(self, env, tx2):
        """Set-then-restore inside one batch must not re-time anyone."""
        speed = SpeedModel(env, tx2)
        work = speed.begin_work([0], work=4.0)
        out = finish_times(env, work)

        def scenario():
            yield env.timeout(0.5)
            with speed.batch():
                speed.set_cpu_share([0], 0.25)
                speed.add_external_demand("dram", 5.0)
                speed.remove_external_demand("dram", 5.0)
                speed.set_cpu_share([0], 1.0)

        env.process(scenario())
        env.run()
        assert out[0][1] == pytest.approx(2.0)  # 4 units at rate 2

    def test_nested_batches_flush_once_at_outermost(self, env, tx2):
        speed = SpeedModel(env, tx2)
        work = speed.begin_work([0], work=4.0)
        out = finish_times(env, work)

        def scenario():
            yield env.timeout(1.0)
            with speed.batch():
                with speed.batch():
                    speed.set_cpu_share([0], 0.5)
                # Tables mutate immediately; only the re-timing of the
                # in-flight work waits for the outermost batch to close.
                assert speed.core_rate(0) == pytest.approx(1.0)

        env.process(scenario())
        env.run()
        # 2 units by t=1 at rate 2, then 2 more at rate 1 -> t=3.
        assert out[0][1] == pytest.approx(3.0)

    def test_transition_on_idle_cores_skips_retiming(self, env, tx2):
        """Rate changes on cores with no in-flight work are bookkeeping
        only — in-flight work elsewhere keeps its completion time."""
        speed = SpeedModel(env, tx2)
        work = speed.begin_work([0], work=4.0)
        out = finish_times(env, work)

        def scenario():
            yield env.timeout(0.5)
            speed.set_cpu_share([4, 5], 0.3)  # idle A57 cores
            speed.set_freq_scale([2, 3], 0.7)

        env.process(scenario())
        env.run()
        assert out[0][1] == pytest.approx(2.0)
        assert speed.core_rate(4) == pytest.approx(0.3)
