"""Tests for the simulated runtime's execution semantics."""

import pytest

from repro.core.policies.registry import make_scheduler
from repro.errors import RuntimeStateError
from repro.graph.dag import TaskGraph
from repro.graph.generators import chain_dag, diamond_dag, layered_synthetic_dag
from repro.graph.task import Priority
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment


def run(graph, scheduler="rws", machine=None, config=None, seed=0, env=None,
        scenario=None):
    machine = machine or jetson_tx2()
    env = env or Environment()
    speed = SpeedModel(env, machine)
    if scenario is not None:
        scenario.install(env, speed, machine)
    runtime = SimulatedRuntime(
        env, machine, graph, make_scheduler(scheduler),
        config=config, speed=speed, seed=seed,
    )
    return runtime.run(), runtime


@pytest.fixture
def kernel():
    return FixedWorkKernel("k", work=1e-3, parallel_fraction=0.8)


class TestBasicExecution:
    def test_single_task(self, kernel):
        g = TaskGraph()
        g.add_task(kernel)
        result, _rt = run(g)
        assert result.tasks_completed == 1
        # 1e-3 work on some core at speed >= 1 plus small overheads.
        assert 1e-4 < result.makespan < 2e-3

    def test_chain_executes_in_order(self, kernel):
        g = chain_dag(kernel, 10)
        result, rt = run(g)
        assert result.tasks_completed == 10
        records = sorted(rt.collector.records, key=lambda r: r.exec_start)
        positions = [r.metadata["position"] for r in records]
        assert positions == list(range(10))

    def test_every_task_executes_exactly_once(self, kernel):
        g = layered_synthetic_dag(kernel, 4, 80)
        result, rt = run(g, "dam-c")
        assert result.tasks_completed == 80
        ids = [r.task_id for r in rt.collector.records]
        assert len(ids) == len(set(ids)) == 80

    def test_all_schedulers_complete_diamond(self, kernel):
        for name in ("rws", "rwsm-c", "fa", "fam-c", "da", "dam-c", "dam-p",
                     "dheft"):
            g = diamond_dag(kernel)
            result, _rt = run(g, name)
            assert result.tasks_completed == 4, name

    def test_makespan_at_least_critical_path_bound(self, kernel):
        g = chain_dag(kernel, 20)
        result, _rt = run(g)
        # 20 tasks of 1e-3 work; fastest core speed 2 -> >= 10 ms.
        assert result.makespan >= 20 * 1e-3 / 2.0

    def test_throughput_definition(self, kernel):
        g = layered_synthetic_dag(kernel, 2, 20)
        result, _rt = run(g)
        assert result.throughput == pytest.approx(
            result.tasks_completed / result.makespan
        )


class TestMoldableExecution:
    def test_wide_assembly_occupies_all_members(self):
        # One strongly-parallel task: DAM-P molds it wide once trained.
        kernel = FixedWorkKernel("wide", work=1e-2, parallel_fraction=0.99,
                                 molding_overhead=0.0)
        g = layered_synthetic_dag(kernel, 2, 60)
        result, rt = run(g, "dam-p")
        widths = {r.place.width for r in rt.collector.records}
        assert widths - {1}, "expected at least some molded executions"
        # Busy time charged to every member core.
        wide_rec = next(r for r in rt.collector.records if r.place.width > 1)
        for core in range(wide_rec.place.leader,
                          wide_rec.place.leader + wide_rec.place.width):
            assert rt.collector.core_busy[core] > 0

    def test_rigid_kernel_stays_width_one_under_cost_search(self):
        kernel = FixedWorkKernel("rigid", work=1e-3, parallel_fraction=0.0)
        g = layered_synthetic_dag(kernel, 2, 40)
        _result, rt = run(g, "dam-c")
        exploration = sum(1 for r in rt.collector.records if r.place.width > 1)
        steady = [r for r in rt.collector.records[20:]]
        assert all(r.place.width == 1 for r in steady)


class TestPrioritySemantics:
    def test_high_priority_never_stolen_under_da(self, kernel):
        g = layered_synthetic_dag(kernel, 3, 60)
        _result, rt = run(g, "da")
        for record in rt.collector.records:
            if record.is_high_priority:
                assert not record.stolen

    def test_rws_steals_high_priority_tasks(self, kernel):
        g = layered_synthetic_dag(kernel, 3, 120)
        _result, rt = run(g, "rws")
        stolen_high = [r for r in rt.collector.records
                       if r.is_high_priority and r.stolen]
        assert stolen_high, "RWS should steal high-priority tasks freely"


class TestLifecycleErrors:
    def test_double_start_rejected(self, kernel):
        g = TaskGraph()
        g.add_task(kernel)
        env = Environment()
        machine = jetson_tx2()
        runtime = SimulatedRuntime(env, machine, g, make_scheduler("rws"))
        runtime.start()
        with pytest.raises(RuntimeStateError):
            runtime.start()

    def test_max_time_exceeded(self, kernel):
        g = chain_dag(kernel, 50)
        config = RuntimeConfig(max_time=1e-3)
        with pytest.raises(RuntimeStateError, match="max_time"):
            run(g, config=config)

    def test_result_reports_scheduler_and_machine(self, kernel):
        g = TaskGraph()
        g.add_task(kernel)
        result, _rt = run(g, "dam-c")
        assert result.scheduler_name == "DAM-C"
        assert result.machine_name == "jetson-tx2"


class TestObservationNoise:
    def test_noise_perturbs_observed_not_duration(self, kernel):
        g = chain_dag(kernel, 30)
        config = RuntimeConfig(measurement_noise=1e-4)
        _result, rt = run(g, "dam-c", config=config)
        diffs = [abs(r.observed - r.duration) for r in rt.collector.records]
        assert any(d > 0 for d in diffs)
        assert all(r.observed > 0 for r in rt.collector.records)

    def test_no_noise_observed_equals_duration(self, kernel):
        g = chain_dag(kernel, 10)
        _result, rt = run(g, "dam-c")
        for r in rt.collector.records:
            assert r.observed == pytest.approx(r.duration)


class TestTaskCommitObservers:
    def test_observer_sees_every_record(self, kernel):
        g = layered_synthetic_dag(kernel, 2, 20)
        env = Environment()
        machine = jetson_tx2()
        runtime = SimulatedRuntime(env, machine, g, make_scheduler("rws"))
        seen = []
        runtime.on_task_commit.append(lambda rec: seen.append(rec.task_id))
        runtime.run()
        assert len(seen) == 20


class TestDynamicGraphExecution:
    def test_spawned_tasks_execute(self, kernel):
        g = TaskGraph()
        count = [0]

        def spawn(graph, task):
            count[0] += 1
            if count[0] < 10:
                graph.add_task(kernel, spawn=spawn)

        g.add_task(kernel, spawn=spawn)
        result, _rt = run(g)
        assert result.tasks_completed == 10
