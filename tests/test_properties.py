"""Property-based tests (hypothesis) over core invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    global_search_cost,
    global_search_performance,
    local_search_cost,
)
from repro.core.ptt import PerformanceTraceTable
from repro.graph.dag import TaskGraph
from repro.graph.generators import layered_synthetic_dag, random_layered_dag
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.cluster import divisor_widths
from repro.machine.presets import jetson_tx2, symmetric_machine
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment
from repro.util.stats import weighted_average

TX2 = jetson_tx2()

FAST = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestSpeedModelProperties:
    @FAST
    @given(
        work=st.floats(min_value=1e-6, max_value=100.0),
        shares=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1.0),   # time gap
                st.floats(min_value=0.05, max_value=1.0),   # share
            ),
            max_size=6,
        ),
    )
    def test_work_in_equals_work_integrated(self, work, shares):
        """Completion time always satisfies ∫rate dt == work."""
        env = Environment()
        speed = SpeedModel(env, TX2)
        item = speed.begin_work([0], work=work)
        out = []
        item.done.callbacks.append(lambda e: out.append(env.now))

        def scenario():
            for gap, share in shares:
                yield env.timeout(gap)
                speed.set_cpu_share([0], share)

        env.process(scenario())
        env.run()
        assert out, "work never finished"
        finish = out[0]
        # Integrate the known schedule up to the finish time.
        t, rate, total = 0.0, 2.0, 0.0
        for gap, share in shares:
            seg_end = t + gap
            total += rate * (min(finish, seg_end) - min(finish, t))
            t, rate = seg_end, 2.0 * share
        total += rate * max(0.0, finish - t)
        assert total == pytest.approx(work, rel=1e-6, abs=1e-9)

    @FAST
    @given(
        work=st.floats(min_value=1e-3, max_value=10.0),
        slow=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_slower_share_never_finishes_earlier(self, work, slow):
        def finish_with(share):
            env = Environment()
            speed = SpeedModel(env, TX2)
            speed.set_cpu_share([0], share)
            item = speed.begin_work([0], work=work)
            out = []
            item.done.callbacks.append(lambda e: out.append(env.now))
            env.run()
            return out[0]

        assert finish_with(slow) >= finish_with(1.0) - 1e-12

    @FAST
    @given(
        n=st.integers(min_value=1, max_value=6),
        work=st.floats(min_value=1e-3, max_value=1.0),
    )
    def test_assembly_rate_is_min_of_members(self, n, work):
        env = Environment()
        speed = SpeedModel(env, TX2)
        cores = list(range(2, 2 + min(n, 4)))  # stay within A57 cluster
        item = speed.begin_work(cores, work=work)
        out = []
        item.done.callbacks.append(lambda e: out.append(env.now))
        env.run()
        assert out[0] == pytest.approx(work / 1.0)


class TestPttProperties:
    @FAST
    @given(samples=st.lists(
        st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=50
    ))
    def test_value_stays_within_sample_hull(self, samples):
        ptt = PerformanceTraceTable(TX2)
        place = TX2.places[0]
        for s in samples:
            ptt.update(place, s)
        assert min(samples) - 1e-12 <= ptt.predict(place) <= max(samples) + 1e-12

    @FAST
    @given(
        old=st.floats(min_value=0, max_value=1e3),
        new=st.floats(min_value=0, max_value=1e3),
        weight=st.integers(min_value=1, max_value=5),
    )
    def test_weighted_average_between_operands(self, old, new, weight):
        value = weighted_average(old, new, weight, 5)
        assert min(old, new) - 1e-9 <= value <= max(old, new) + 1e-9

    @FAST
    @given(target=st.floats(min_value=1e-3, max_value=1e3))
    def test_convergence_to_constant_signal(self, target):
        ptt = PerformanceTraceTable(TX2)
        place = TX2.places[0]
        ptt.update(place, target * 10)
        for _ in range(100):
            ptt.update(place, target)
        assert ptt.predict(place) == pytest.approx(target, rel=1e-3)


class TestSearchProperties:
    @FAST
    @given(values=st.lists(
        st.floats(min_value=1e-3, max_value=10.0), min_size=10, max_size=10
    ))
    def test_global_performance_returns_true_argmin(self, values):
        ptt = PerformanceTraceTable(TX2)
        for place, value in zip(TX2.places, values):
            ptt.update(place, value)
        chosen = global_search_performance(ptt, TX2)
        best = min(ptt.predict(p) for p in TX2.places)
        assert ptt.predict(chosen) == pytest.approx(best)

    @FAST
    @given(values=st.lists(
        st.floats(min_value=1e-3, max_value=10.0), min_size=10, max_size=10
    ))
    def test_global_cost_returns_true_argmin(self, values):
        ptt = PerformanceTraceTable(TX2)
        for place, value in zip(TX2.places, values):
            ptt.update(place, value)
        chosen = global_search_cost(ptt, TX2)
        best = min(ptt.predict(p) * p.width for p in TX2.places)
        assert ptt.predict(chosen) * chosen.width == pytest.approx(best)

    @FAST
    @given(
        core=st.integers(min_value=0, max_value=5),
        values=st.lists(
            st.floats(min_value=1e-3, max_value=10.0), min_size=10, max_size=10
        ),
    )
    def test_local_search_place_always_contains_core(self, core, values):
        ptt = PerformanceTraceTable(TX2)
        for place, value in zip(TX2.places, values):
            ptt.update(place, value)
        chosen = local_search_cost(ptt, TX2, core)
        assert core in TX2.place_cores(chosen)


class TestTopologyProperties:
    @FAST
    @given(n=st.integers(min_value=1, max_value=64))
    def test_divisor_widths_tile_cluster(self, n):
        for width in divisor_widths(n):
            assert n % width == 0

    @FAST
    @given(
        sockets=st.integers(min_value=1, max_value=4),
        cores=st.integers(min_value=1, max_value=12),
    )
    def test_places_cover_and_stay_within_clusters(self, sockets, cores):
        machine = symmetric_machine(sockets, cores)
        for place in machine.places:
            cluster = machine.cluster_of(place.leader)
            members = machine.place_cores(place)
            assert all(machine.cluster_of(c) is cluster for c in members)
        # Every core leads at least the width-1 place.
        leaders = {p.leader for p in machine.places if p.width == 1}
        assert leaders == set(range(machine.num_cores))


class TestGraphProperties:
    @FAST
    @given(
        parallelism=st.integers(min_value=1, max_value=8),
        layers=st.integers(min_value=1, max_value=12),
    )
    def test_layered_dag_parallelism_formula(self, parallelism, layers):
        kernel = FixedWorkKernel("k", work=1.0)
        g = layered_synthetic_dag(kernel, parallelism, parallelism * layers)
        assert g.total_tasks == parallelism * layers
        assert g.longest_path() == layers
        assert g.dag_parallelism() == pytest.approx(parallelism)

    @FAST
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        layers=st.integers(min_value=1, max_value=8),
        width=st.integers(min_value=1, max_value=5),
    )
    def test_random_dag_fully_executable_no_losses(self, seed, layers, width):
        """Topological execution completes every task exactly once."""
        kernel = FixedWorkKernel("k", work=1.0)
        g = random_layered_dag([kernel], layers, width, seed=seed)
        executed = 0
        ready = g.drain_ready()
        while ready:
            nxt = []
            for task in ready:
                executed += 1
                nxt.extend(g.complete(task))
            ready = nxt
        assert executed == g.total_tasks
        assert g.is_finished
