"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.kernels.fixed import FixedWorkKernel
from repro.machine.presets import haswell16, haswell_node, jetson_tx2
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def tx2():
    return jetson_tx2()


@pytest.fixture
def hsw16():
    return haswell16()


@pytest.fixture
def speed(env, tx2) -> SpeedModel:
    return SpeedModel(env, tx2)


@pytest.fixture
def tiny_kernel() -> FixedWorkKernel:
    """A 1 ms (at speed 1) rigid-ish kernel for runtime tests."""
    return FixedWorkKernel("tiny", work=1e-3, parallel_fraction=0.8,
                           memory_intensity=0.0)
