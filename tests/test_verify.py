"""Tests for the reproduction scorecard mechanics."""

from repro.experiments.verify import Claim, Scorecard


class TestScorecard:
    def test_add_and_count(self):
        card = Scorecard()
        card.add("fig1", "holds", True)
        card.add("fig2", "breaks", False, detail="measured 0.5x")
        assert card.passed == 1
        assert not card.all_hold
        assert len(card.claims) == 2

    def test_report_marks_pass_fail(self):
        card = Scorecard()
        card.add("figA", "good claim", True)
        card.add("figB", "bad claim", False, detail="why")
        report = card.report()
        assert "[PASS] figA" in report
        assert "[FAIL] figB" in report
        assert "[why]" in report
        assert "1/2 claims hold" in report

    def test_all_hold(self):
        card = Scorecard()
        card.add("x", "a", True)
        card.add("x", "b", True)
        assert card.all_hold

    def test_claim_dataclass(self):
        claim = Claim("fig4", "text", True, "detail")
        assert claim.artifact == "fig4"
        assert claim.holds


class TestCliIntegration:
    def test_verify_not_in_all(self):
        from repro.experiments.runner import _HARNESSES
        assert "verify" in _HARNESSES

    def test_runner_excludes_verify_from_all(self, monkeypatch):
        import repro.experiments.runner as runner_mod
        ran = []
        monkeypatch.setattr(
            runner_mod,
            "_HARNESSES",
            {
                "a": lambda s: type("R", (), {"report": lambda self: "ra"})(),
                "verify": lambda s: (_ for _ in ()).throw(AssertionError),
            },
        )
        assert runner_mod.main(["all"]) == 0
        # Reaching here means "verify" was not invoked by "all".
