"""Smoke + shape tests for the experiment harnesses (tiny scale)."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    HASWELL_SCHEDULERS,
    TX2_SCHEDULERS,
    speedup,
)
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.fig5_distribution import run_fig5
from repro.experiments.fig6_worktime import run_fig6
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.fig9_kmeans import run_fig9
from repro.experiments.fig10_heat import run_fig10
from repro.experiments.table1_features import run_table1
from repro.errors import ConfigurationError

TINY = ExperimentSettings(scale=0.01, seed=0)


class TestSettings:
    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=2.0)

    def test_task_count_floor(self):
        s = ExperimentSettings(scale=0.01)
        assert s.task_count(32000, 6) == 320
        assert s.task_count(100, 6) == 60  # floor: 10 per parallelism

    def test_dvfs_wave_floor(self):
        assert ExperimentSettings(scale=0.01).dvfs_wave().half_period == 0.5
        assert ExperimentSettings(scale=1.0).dvfs_wave().half_period == 5.0

    def test_speedup_guard(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)


class TestTable1:
    def test_rows_and_report(self):
        result = run_table1()
        assert len(result.rows) == 7
        report = result.report()
        for name in ("RWS", "FAM-C", "DAM-P"):
            assert name in report


class TestFig4:
    def test_small_run_shape(self):
        result = run_fig4(
            TINY, kernels=("matmul",), parallelisms=(2, 4),
            schedulers=("rws", "fa", "dam-c"),
        )
        data = result.throughput["matmul"]
        assert set(data) == {"rws", "fa", "dam-c"}
        assert all(v > 0 for by in data.values() for v in by.values())
        # The §5.1 ordering at parallelism 2.
        assert data["rws"][2] < data["fa"][2] < data["dam-c"][2]
        assert "Fig 4" in result.report()

    def test_headline_ratios_present(self):
        result = run_fig4(
            TINY, kernels=("matmul",), parallelisms=(2,),
            schedulers=("rws", "fa", "fam-c", "dam-c"),
        )
        ratios = result.headline_ratios()
        assert ratios["dam-c/rws"] > 1.0


class TestFig5:
    def test_distribution_shapes(self):
        result = run_fig5(TINY, schedulers=("rws", "fa", "da"))
        # FA: exactly the two Denver cores, 50/50.
        fa = result.distribution["fa"]
        assert result.interfered_core_share("fa") == pytest.approx(0.5, abs=0.05)
        # DA avoids the interfered core almost entirely.
        assert result.interfered_core_share("da") < 0.05
        assert "Fig 5" in result.report()

    def test_fractions_sum_to_one(self):
        result = run_fig5(TINY, schedulers=("dam-c",))
        total = sum(result.distribution["dam-c"].values())
        assert total == pytest.approx(1.0)


class TestFig6:
    def test_worktime_shape(self):
        result = run_fig6(TINY, schedulers=("fa", "dam-c"))
        # FA pins half the criticals to interfered core 0: its core-0 work
        # time exceeds DAM-C's.
        assert result.work_time["fa"][0] > result.work_time["dam-c"][0]
        assert result.total("fa") > 0
        assert "Fig 6" in result.report()


class TestFig8:
    def test_sensitivity_shape(self):
        result = run_fig8(
            TINY, tiles=(32, 96), new_weights=(1, 5), parallelism=4,
        )
        # Tiny tiles are sensitive to the fold weight; large ones are not.
        assert result.spread(32) > result.spread(96)
        assert "Fig 8" in result.report()


class TestFig9:
    def test_kmeans_window_effect(self):
        result = run_fig9(TINY, schedulers=("rws", "dam-p"), iterations=60,
                          window=(15, 45))
        for sched in ("rws", "dam-p"):
            inside = result.mean_iteration_time(sched, inside_window=True)
            outside = result.mean_iteration_time(sched, inside_window=False)
            assert inside > outside, sched
        # DAM-P handles the interference better than RWS.
        assert result.mean_iteration_time("dam-p", True) < \
            result.mean_iteration_time("rws", True)
        assert "Fig 9" in result.report()


class TestFig10:
    def test_heat_shape(self):
        result = run_fig10(TINY, schedulers=("rws", "rwsm-c", "dam-c"),
                           nodes=2, iterations=10)
        assert result.throughput["dam-c"] > result.throughput["rws"]
        ratios = result.headline_ratios()
        assert ratios["dam-c/rws"] > 1.2
        assert "Fig 10" in result.report()


class TestCli:
    def test_runner_table1(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_runner_rejects_unknown(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCliEndToEnd:
    def test_runner_fig5_small(self, capsys):
        from repro.experiments.runner import main
        assert main(["fig5", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "regenerated in" in out

    def test_runner_seeds_small(self, capsys):
        from repro.experiments.runner import main
        assert main(["seeds", "--scale", "0.01", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Seed robustness" in out
