"""Tests for interference scenarios."""

import pytest

from repro.errors import ConfigurationError, RuntimeStateError
from repro.interference.composite import CompositeScenario
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.interference.base import NullScenario
from repro.interference.traces import (
    AddDemand,
    InterferenceTrace,
    SetCpuShare,
    SetFreqScale,
    TraceScenario,
)
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


@pytest.fixture
def sim():
    env = Environment()
    machine = jetson_tx2()
    speed = SpeedModel(env, machine)
    return env, machine, speed


class TestCorunner:
    def test_window_applies_and_clears(self, sim):
        env, machine, speed = sim
        scenario = CorunnerInterference([0], cpu_share=0.5,
                                        memory_demand=1.0, start=1.0, end=3.0)
        scenario.install(env, speed, machine)
        env.run(until=0.5)
        assert speed.cpu_share(0) == 1.0
        env.run(until=2.0)
        assert speed.cpu_share(0) == 0.5
        assert speed.external_demand("dram") == pytest.approx(1.0)
        env.run(until=4.0)
        assert speed.cpu_share(0) == 1.0
        assert speed.external_demand("dram") == pytest.approx(0.0)

    def test_open_ended_window(self, sim):
        env, machine, speed = sim
        CorunnerInterference([0], start=0.0).install(env, speed, machine)
        env.run(until=100.0)
        assert speed.cpu_share(0) == 0.5

    def test_manual_activation(self, sim):
        env, machine, speed = sim
        scenario = CorunnerInterference([2, 3], cpu_share=0.6, start=None)
        scenario.install(env, speed, machine)
        assert not scenario.active
        scenario.activate()
        assert speed.cpu_share(2) == 0.6
        scenario.activate()  # idempotent
        scenario.deactivate()
        assert speed.cpu_share(2) == 1.0
        scenario.deactivate()  # idempotent

    def test_activate_before_install_rejected(self):
        scenario = CorunnerInterference([0], start=None)
        with pytest.raises(RuntimeStateError):
            scenario.activate()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CorunnerInterference([])
        with pytest.raises(ConfigurationError):
            CorunnerInterference([0], cpu_share=0.0)
        with pytest.raises(ConfigurationError):
            CorunnerInterference([0], start=2.0, end=1.0)

    def test_factories(self):
        assert CorunnerInterference.copy_chain([0]).memory_demand > \
            CorunnerInterference.matmul_chain([0]).memory_demand


class TestDvfsScenario:
    def test_defaults_target_fastest_cluster(self, sim):
        env, machine, speed = sim
        scenario = DvfsInterference()
        scenario.install(env, speed, machine)
        assert scenario.governor is not None
        assert scenario.governor.cores == (0, 1)  # Denver cores

    def test_explicit_cores(self, sim):
        env, machine, speed = sim
        scenario = DvfsInterference(cores=[2, 3])
        scenario.install(env, speed, machine)
        assert scenario.governor.cores == (2, 3)

    def test_empty_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsInterference(cores=[])


class TestComposite:
    def test_installs_all(self, sim):
        env, machine, speed = sim
        composite = CompositeScenario([
            CorunnerInterference([0], start=0.0),
            DvfsInterference(cores=[2]),
        ])
        composite.install(env, speed, machine)
        env.run(until=0.1)
        assert speed.cpu_share(0) == 0.5

    def test_null_scenario_is_noop(self, sim):
        env, machine, speed = sim
        NullScenario().install(env, speed, machine)
        env.run(until=1.0)
        assert speed.cpu_share(0) == 1.0


class TestTraces:
    def test_replay_applies_actions_in_order(self, sim):
        env, machine, speed = sim
        trace = InterferenceTrace([
            SetCpuShare(1.0, (0,), 0.5),
            SetFreqScale(2.0, (0, 1), 0.25),
            AddDemand(3.0, "dram", 2.0),
            AddDemand(4.0, "dram", -2.0),
            SetCpuShare(5.0, (0,), 1.0),
        ])
        TraceScenario(trace).install(env, speed, machine)
        env.run(until=2.5)
        assert speed.cpu_share(0) == 0.5
        assert speed.freq_scale(1) == 0.25
        env.run(until=3.5)
        assert speed.external_demand("dram") == pytest.approx(2.0)
        env.run(until=6.0)
        assert speed.external_demand("dram") == pytest.approx(0.0)
        assert speed.cpu_share(0) == 1.0

    def test_roundtrip_serialization(self):
        trace = InterferenceTrace([
            SetCpuShare(1.0, (0,), 0.5),
            SetFreqScale(2.0, (1,), 0.3),
            AddDemand(3.0, "dram", 1.5),
        ])
        rebuilt = InterferenceTrace.from_dicts(trace.to_dicts())
        assert rebuilt.to_dicts() == trace.to_dicts()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceTrace.from_dicts([{"kind": "alien", "time": 0.0}])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceTrace([SetCpuShare(-1.0, (0,), 0.5)])

    def test_append_preserves_order(self):
        trace = InterferenceTrace([SetCpuShare(1.0, (0,), 0.5)])
        trace.append(SetCpuShare(2.0, (0,), 1.0))
        assert len(trace) == 2
        with pytest.raises(ConfigurationError):
            trace.append(SetCpuShare(0.5, (0,), 1.0))

    def test_actions_sorted_at_construction(self):
        trace = InterferenceTrace([
            SetCpuShare(2.0, (0,), 1.0),
            SetCpuShare(1.0, (0,), 0.5),
        ])
        assert [a.time for a in trace.actions] == [1.0, 2.0]

    def test_empty_trace_replay_is_noop(self, sim):
        env, machine, speed = sim
        TraceScenario(InterferenceTrace()).install(env, speed, machine)
        env.run(until=1.0)
