"""Tests for tasks, the DAG, and generators."""

import pytest

from repro.errors import GraphError
from repro.graph.dag import TaskGraph
from repro.graph.generators import (
    chain_dag,
    diamond_dag,
    fork_join_dag,
    layered_synthetic_dag,
    random_layered_dag,
)
from repro.graph.task import Priority, Task, TaskState
from repro.kernels.fixed import FixedWorkKernel


@pytest.fixture
def kernel():
    return FixedWorkKernel("k", work=1.0)


class TestTaskGraphBasics:
    def test_root_is_ready_immediately(self, kernel):
        g = TaskGraph()
        t = g.add_task(kernel)
        assert t.state is TaskState.READY
        assert g.drain_ready() == [t]
        assert g.drain_ready() == []

    def test_dependency_release(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        b = g.add_task(kernel, deps=[a])
        g.drain_ready()
        assert b.state is TaskState.WAITING
        released = g.complete(a)
        assert released == [b]
        assert b.state is TaskState.READY

    def test_join_waits_for_all_parents(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        b = g.add_task(kernel)
        c = g.add_task(kernel, deps=[a, b])
        g.drain_ready()
        assert g.complete(a) == []
        assert g.complete(b) == [c]

    def test_duplicate_deps_collapse(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        b = g.add_task(kernel, deps=[a, a, a])
        g.drain_ready()
        assert g.complete(a) == [b]

    def test_dep_on_completed_task_is_satisfied(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        g.drain_ready()
        g.complete(a)
        b = g.add_task(kernel, deps=[a])
        assert b.state is TaskState.READY

    def test_foreign_task_rejected(self, kernel):
        g1, g2 = TaskGraph("g1"), TaskGraph("g2")
        a = g1.add_task(kernel)
        with pytest.raises(GraphError):
            g2.add_task(kernel, deps=[a])
        with pytest.raises(GraphError):
            g2.complete(a)

    def test_double_complete_rejected(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        g.drain_ready()
        g.complete(a)
        with pytest.raises(GraphError):
            g.complete(a)

    def test_complete_waiting_task_rejected(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        b = g.add_task(kernel, deps=[a])
        with pytest.raises(GraphError):
            g.complete(b)

    def test_is_finished(self, kernel):
        g = TaskGraph()
        a = g.add_task(kernel)
        b = g.add_task(kernel, deps=[a])
        g.drain_ready()
        assert not g.is_finished
        g.complete(a)
        g.drain_ready()
        assert not g.is_finished
        g.complete(b)
        assert g.is_finished

    def test_validate_passes_on_healthy_graph(self, kernel):
        g = layered_synthetic_dag(kernel, 3, 12)
        g.validate()


class TestDynamicInsertion:
    def test_spawn_hook_inserts_next_tasks(self, kernel):
        g = TaskGraph()

        def spawn(graph, task):
            graph.add_task(kernel, metadata={"spawned": True})

        a = g.add_task(kernel, spawn=spawn)
        g.drain_ready()
        released = g.complete(a)
        assert len(released) == 1
        assert released[0].metadata["spawned"]

    def test_spawned_chain_terminates(self, kernel):
        g = TaskGraph()
        count = [0]

        def spawn(graph, task):
            count[0] += 1
            if count[0] < 5:
                graph.add_task(kernel, spawn=spawn)

        g.add_task(kernel, spawn=spawn)
        ready = g.drain_ready()
        while ready:
            nxt = []
            for t in ready:
                nxt.extend(g.complete(t))
            ready = nxt
        assert g.is_finished
        assert g.total_tasks == 5


class TestStructuralMeasures:
    def test_longest_path_chain(self, kernel):
        g = chain_dag(kernel, 7)
        assert g.longest_path() == 7.0
        assert g.dag_parallelism() == pytest.approx(1.0)

    def test_dag_parallelism_of_layered_dag(self, kernel):
        g = layered_synthetic_dag(kernel, 4, 40)
        assert g.dag_parallelism() == pytest.approx(4.0)
        assert g.total_tasks == 40

    def test_empty_graph_measures(self):
        g = TaskGraph()
        assert g.longest_path() == 0.0
        assert g.dag_parallelism() == 0.0

    def test_critical_path_work(self):
        heavy = FixedWorkKernel("heavy", work=5.0)
        light = FixedWorkKernel("light", work=1.0)
        g = TaskGraph()
        a = g.add_task(heavy)
        g.add_task(light, deps=[a])
        assert g.critical_path_work() == pytest.approx(6.0)
        assert g.total_work() == pytest.approx(6.0)


class TestGenerators:
    def test_layered_dag_structure(self, kernel):
        g = layered_synthetic_dag(kernel, parallelism=3, total_tasks=12)
        tasks = list(g.tasks())
        criticals = [t for t in tasks if t.is_high_priority]
        assert len(criticals) == 4  # one per layer
        # Every layer>0 task depends exactly on the previous critical.
        layer1 = [t for t in tasks if t.metadata["layer"] == 1]
        assert all(t.pending_dependencies == 1 for t in layer1)
        # Completing the critical of layer 0 releases all of layer 1.
        g.drain_ready()
        released = g.complete(criticals[0])
        assert {t.metadata["layer"] for t in released} == {1}
        assert len(released) == 3

    def test_layered_dag_rounds_down(self, kernel):
        g = layered_synthetic_dag(kernel, parallelism=3, total_tasks=11)
        assert g.total_tasks == 9

    def test_layered_dag_validation(self, kernel):
        with pytest.raises(Exception):
            layered_synthetic_dag(kernel, 0, 10)
        with pytest.raises(Exception):
            layered_synthetic_dag(kernel, 5, 3)

    def test_chain_priorities(self, kernel):
        g = chain_dag(kernel, 3, priority=Priority.HIGH)
        assert all(t.is_high_priority for t in g.tasks())

    def test_fork_join_structure(self, kernel):
        g = fork_join_dag(kernel, fan_out=4, stages=2)
        assert g.total_tasks == 1 + 2 * (4 + 1)
        assert g.dag_parallelism() == pytest.approx(11 / 5)

    def test_diamond(self, kernel):
        g = diamond_dag(kernel)
        assert g.total_tasks == 4
        assert g.longest_path() == 3.0

    def test_random_layered_determinism(self, kernel):
        g1 = random_layered_dag([kernel], 10, 5, seed=3)
        g2 = random_layered_dag([kernel], 10, 5, seed=3)
        assert g1.total_tasks == g2.total_tasks
        deps1 = [t.pending_dependencies for t in g1.tasks()]
        deps2 = [t.pending_dependencies for t in g2.tasks()]
        assert deps1 == deps2

    def test_random_layered_is_connected_across_layers(self, kernel):
        g = random_layered_dag([kernel], 8, 4, seed=1, edge_probability=0.0)
        # Forced edges keep layers ordered even at p=0.
        roots = [t for t in g.tasks() if t.state is TaskState.READY]
        layer0_width = len([t for t in g.tasks() if t.metadata["layer"] == 0])
        assert len(roots) == layer0_width

    def test_random_layered_executes_fully(self, kernel):
        g = random_layered_dag([kernel], 6, 4, seed=2)
        ready = g.drain_ready()
        done = 0
        while ready:
            nxt = []
            for t in ready:
                nxt.extend(g.complete(t))
                done += 1
            ready = nxt
        assert done == g.total_tasks
        assert g.is_finished
