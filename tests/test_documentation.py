"""Documentation quality gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in ALL_MODULES if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"classes without docstrings: {missing}"

    def test_every_public_function_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"functions without docstrings: {missing}"

    def test_public_api_exports_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.ismodule(obj) or isinstance(obj, (str, tuple)):
                continue
            assert (obj.__doc__ or "").strip(), f"repro.{name} undocumented"


class TestProjectFiles:
    @pytest.mark.parametrize(
        "path", ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
    )
    def test_top_level_docs_exist(self, path):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        full = os.path.join(root, path)
        assert os.path.exists(full), f"{path} missing"
        with open(full, encoding="utf-8") as handle:
            assert len(handle.read()) > 500

    def test_no_todo_markers_in_source(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        offenders = []
        for dirpath, _dirs, files in os.walk(os.path.join(root, "src")):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                full = os.path.join(dirpath, fname)
                with open(full, encoding="utf-8") as handle:
                    text = handle.read()
                for marker in ("TODO", "FIXME", "XXX"):
                    if marker in text:
                        offenders.append(f"{full}: {marker}")
        assert not offenders, offenders
