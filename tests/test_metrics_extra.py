"""Tests for the utilization / molding / stealing metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    machine_utilization,
    stolen_fraction,
    width_histogram,
)
from repro.session import quick_run


class TestOnSyntheticData:
    def test_machine_utilization(self):
        busy = {0: 1.0, 1: 0.5, 2: 0.0, 3: 0.5}
        assert machine_utilization(busy, makespan=1.0) == pytest.approx(0.5)

    def test_utilization_validation(self):
        with pytest.raises(ConfigurationError):
            machine_utilization({0: 1.0}, makespan=0.0)
        with pytest.raises(ConfigurationError):
            machine_utilization({}, makespan=1.0)

    def test_stolen_fraction_empty(self):
        assert stolen_fraction([]) is None


class TestOnRealRuns:
    def test_utilization_bounded(self):
        result = quick_run(scheduler="dam-c", parallelism=4, total_tasks=200)
        u = machine_utilization(result.collector.core_busy, result.makespan)
        assert 0.0 < u <= 1.0

    def test_width_histogram_counts_all_tasks(self):
        result = quick_run(scheduler="dam-p", parallelism=2, total_tasks=100)
        histogram = width_histogram(result.collector.records)
        assert sum(histogram.values()) == 100
        assert all(w in (1, 2, 4) for w in histogram)

    def test_rws_steals_more_than_dam(self):
        """Priority-blind RWS relies on stealing for everything; DAM's
        criticals are pinned, so its stolen fraction is lower."""
        def frac(sched):
            result = quick_run(
                scheduler=sched, parallelism=3, total_tasks=300,
            )
            return stolen_fraction(result.collector.records)

        assert frac("rws") > frac("dam-c")
