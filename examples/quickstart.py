#!/usr/bin/env python3
"""Quickstart: schedule a synthetic task DAG under interference.

Builds the paper's NVIDIA Jetson TX2 model (2 fast Denver cores + 4 slower
A57 cores), pins a compute-bound co-runner to Denver core 0, and executes
the same matmul DAG under random work stealing (RWS) and the paper's
dynamic asymmetry scheduler (DAM-C).  Prints throughput and where each
scheduler placed the critical tasks.

Run:  python examples/quickstart.py
"""

from repro import CorunnerInterference, jetson_tx2, quick_run
from repro.metrics import place_distribution


def main() -> None:
    machine = jetson_tx2()
    print(f"Machine: {machine}")
    print(f"Execution places: {', '.join(str(p) for p in machine.places)}")
    print()

    results = {}
    for scheduler in ("rws", "fa", "dam-c"):
        result = quick_run(
            scheduler=scheduler,
            kernel="matmul",
            parallelism=2,
            total_tasks=600,
            machine=jetson_tx2(),
            # A matmul chain time-shares Denver core 0 for the whole run.
            scenario=CorunnerInterference.matmul_chain([0]),
        )
        results[scheduler] = result
        dist = place_distribution(result.collector.records)
        top = sorted(dist.items(), key=lambda kv: -kv[1])[:3]
        placed = "  ".join(f"{p}:{v:.0%}" for p, v in top)
        print(f"{scheduler.upper():7s} throughput = {result.throughput:7.0f} tasks/s"
              f"   critical tasks at: {placed}")

    speedup = results["dam-c"].throughput / results["rws"].throughput
    print()
    print(f"DAM-C speedup over RWS under interference: {speedup:.2f}x")
    print("DAM-C detects the perturbed core through its Performance Trace")
    print("Table and steers the critical path to the free fast core.")


if __name__ == "__main__":
    main()
