#!/usr/bin/env python3
"""Distributed 2D heat: simulated MPI cluster + real Jacobi verification.

Part 1 verifies the physics with the real NumPy Jacobi solver.  Part 2
runs the paper's distributed heat workload on a simulated 4-node Haswell
cluster connected by an InfiniBand-like fabric: boundary exchanges are
high-priority communication tasks, compute strips are moldable, and a
matmul co-runner occupies 5 cores of node 0's socket 0 — the Fig. 10
scenario.

Run:  python examples/distributed_heat.py
"""

import numpy as np

from repro import haswell_node
from repro.apps.heat import HeatConfig, build_heat_graph_builder, reference_heat
from repro.distributed import DistributedRuntime
from repro.interference.corunner import CorunnerInterference


def real_jacobi_demo() -> None:
    grid = np.zeros((64, 64))
    out = reference_heat(grid, iterations=500, boundary=100.0)
    print("Part 1 — real Jacobi diffusion on a 64x64 plate, 100C boundary:")
    print(f"  center temperature after 500 sweeps: {out[32, 32]:.1f}C")
    print(f"  quarter-point temperature:           {out[16, 16]:.1f}C")
    print()


def cluster_demo() -> None:
    print("Part 2 — 4-node simulated cluster, interference on node 0:")
    config = HeatConfig(iterations=30)
    print(f"  grid {config.rows}x{config.cols} over {config.nodes} nodes, "
          f"{config.partitions} strips/node, {config.iterations} iterations")
    for scheduler in ("rws", "rwsm-c", "dam-c"):
        runtime = DistributedRuntime(
            [haswell_node() for _ in range(config.nodes)],
            scheduler,
            build_heat_graph_builder(config),
            scenarios={
                0: CorunnerInterference(
                    cores=[0, 1, 2, 3, 4], cpu_share=0.5, memory_demand=2.0
                )
            },
        )
        result = runtime.run()
        exchange_waits = []
        for node in runtime.runtimes:
            for record in node.collector.records:
                if record.metadata.get("role") == "exchange":
                    exchange_waits.append(record.wait_time)
        print(f"  {scheduler.upper():7s} throughput = {result.throughput:7.0f} "
              f"tasks/s over {result.messages} messages "
              f"({result.bytes_moved / 1e6:.1f} MB moved), "
              f"mean exchange wait {np.mean(exchange_waits) * 1e3:.2f} ms")
    print()
    print("Moldability (RWSM-C, DAM-C) pools cores so each strip's working")
    print("set fits the shared cache; DAM-C additionally steers the")
    print("critical boundary exchanges away from the perturbed cores.")


def main() -> None:
    real_jacobi_demo()
    cluster_demo()


if __name__ == "__main__":
    main()
