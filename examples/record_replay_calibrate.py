#!/usr/bin/env python3
"""Advanced workflows: interference record/replay and host calibration.

Part 1 records the exact interference trajectory of a composite scenario
(DVFS square wave + a late-arriving co-runner), serializes it, and replays
it bit-identically against a *different* scheduler — the clean way to
compare policies under one perturbation.

Part 2 times the real NumPy kernels on this host and fits the analytic
cost-model constants, anchoring the simulator's time scale to your
machine.

Run:  python examples/record_replay_calibrate.py
"""

import json

from repro import (
    CompositeScenario,
    CorunnerInterference,
    DvfsInterference,
    jetson_tx2,
    quick_run,
)
from repro.interference.traces import InterferenceTrace, TraceRecorder, TraceScenario
from repro.kernels.calibrate import calibrate, calibrated_kernels
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment


def record_and_replay() -> None:
    print("Part 1 — record a composite scenario, replay it elsewhere:")

    def fresh_scenario():
        return CompositeScenario([
            DvfsInterference(wave=PeriodicSquareWave(half_period=0.2),
                             until=1.2),
            CorunnerInterference.copy_chain([0], start=0.4, end=1.0),
        ])

    # Capture the trajectory by driving a bare speed model.
    env = Environment()
    machine = jetson_tx2()
    speed = SpeedModel(env, machine)
    recorder = TraceRecorder()
    recorder.attach(env, speed)
    fresh_scenario().install(env, speed, machine)
    env.run(until=1.5)
    trace = recorder.trace()
    payload = json.dumps(trace.to_dicts())
    print(f"  recorded {len(trace)} platform actions "
          f"({len(payload)} bytes of JSON)")

    # Replay the identical perturbation under two schedulers.
    rebuilt = InterferenceTrace.from_dicts(json.loads(payload))
    for scheduler in ("rws", "dam-c"):
        result = quick_run(
            scheduler=scheduler, kernel="copy", parallelism=3,
            total_tasks=900, machine=jetson_tx2(),
            scenario=TraceScenario(rebuilt),
        )
        print(f"  {scheduler.upper():6s} under the replayed trace: "
              f"{result.throughput:6.0f} tasks/s")
    print()


def host_calibration() -> None:
    print("Part 2 — calibrate the cost models against this host:")
    result = calibrate(matmul_tile=64, copy_tile=512, stencil_tile=512,
                       repeats=3)
    print(f"  measured: matmul64 {result.matmul_seconds * 1e3:.2f} ms, "
          f"copy512 {result.copy_seconds * 1e3:.2f} ms, "
          f"stencil512 {result.stencil_seconds * 1e3:.2f} ms")
    kernels = calibrated_kernels(result)
    machine = jetson_tx2()
    place = machine.places[0]
    for name, kernel in kernels.items():
        profile = kernel.profile(machine, place)
        print(f"  fitted {name:8s}: seq work {kernel.seq_work() * 1e3:.3f} ms "
              f"-> {profile.work * 1e3:.3f} ms at {place}")
    print()
    print("Passing these kernels into layered_synthetic_dag() makes the")
    print("simulated task granularities match your hardware's.")


def main() -> None:
    record_and_replay()
    host_calibration()


if __name__ == "__main__":
    main()
