#!/usr/bin/env python3
"""K-means: a real computation and its scheduled, interference-hit twin.

Part 1 runs genuine NumPy K-means (Lloyd's algorithm) on synthetic blobs —
the actual math the workload represents.  Part 2 executes the paper's
dynamic K-means DAG (one moldable task per loop partition, the largest
marked critical; each iteration spawned at runtime) on a simulated 16-core
Haswell while a co-runner occupies socket 0 between iterations 20 and 70,
and compares how RWS and DAM-P ride through the interference window
(paper Fig. 9).

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro import haswell16, run_graph
from repro.apps.kmeans import KMeansConfig, build_kmeans_graph, reference_kmeans
from repro.interference.corunner import CorunnerInterference
from repro.metrics import iteration_series


def real_kmeans_demo() -> None:
    rng = np.random.default_rng(0)
    blobs = np.vstack([
        rng.normal(center, 0.4, size=(400, 3))
        for center in (0.0, 4.0, 9.0)
    ])
    centroids, labels, inertia = reference_kmeans(blobs, 3, iterations=15)
    print("Part 1 — real NumPy K-means on 1200 points, 3 blobs:")
    print(f"  centroid means: {np.sort(centroids.mean(axis=1)).round(2)}")
    print(f"  inertia: {inertia:.1f}")
    print(f"  cluster sizes: {np.bincount(labels).tolist()}")
    print()


def scheduled_kmeans_demo() -> None:
    print("Part 2 — scheduled K-means DAG with an interference window")
    print("(co-runner on socket 0, iterations 20-70):")
    config = KMeansConfig(iterations=100)
    window = (20, 70)
    for scheduler in ("rws", "dam-p"):
        machine = haswell16()
        socket0 = list(machine.cluster("socket0").core_ids)
        corunner = CorunnerInterference(
            cores=socket0, cpu_share=0.5, memory_demand=1.5, start=None
        )
        hooks = {
            window[0]: lambda _i: corunner.activate(),
            window[1]: lambda _i: corunner.deactivate(),
        }
        graph = build_kmeans_graph(config, iteration_hooks=hooks)
        result = run_graph(graph, machine, scheduler, scenario=corunner)
        series = dict(iteration_series(result.collector.records))
        before = np.mean([series[i] for i in range(0, window[0])])
        inside = np.mean([series[i] for i in range(window[0] + 5, window[1] - 5)])
        print(f"  {scheduler.upper():6s} mean iteration: "
              f"{before:.2f}s before window, {inside:.2f}s inside "
              f"({inside / before:.2f}x slowdown)")
    print()
    print("DAM-P molds the critical partition onto the clean socket, so its")
    print("iterations barely feel the interference; RWS stalls on the")
    print("perturbed cores.")


def main() -> None:
    real_kmeans_demo()
    scheduled_kmeans_demo()


if __name__ == "__main__":
    main()
