#!/usr/bin/env python3
"""Extending the library: write and evaluate your own scheduling policy.

Implements "GreedyFast" — a deliberately naive policy that sends *every*
task (critical or not) to the core with the lowest PTT-predicted time —
then races it against RWS and DAM-C under DVFS interference.  GreedyFast
illustrates why the paper treats criticality and data locality separately:
chasing the fastest core for all tasks overcommits it and forfeits the
locality of low-priority tasks.

Run:  python examples/custom_scheduler.py
"""

from repro import DvfsInterference, jetson_tx2, quick_run
from repro.core.placement import global_search_performance
from repro.core.policies.base import SchedulerPolicy
from repro.graph.task import Task
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.topology import ExecutionPlace


class GreedyFastScheduler(SchedulerPolicy):
    """Every task chases the globally fastest place; nothing is stealable."""

    name = "GreedyFast"
    asymmetry = "dynamic"
    moldability = True
    priority_placement = "performance"

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        machine = self._require_bound()
        return global_search_performance(
            self.table(task), machine, backlog=self.backlog
        )

    def allow_steal(self, task: Task) -> bool:
        return False


def main() -> None:
    wave = PeriodicSquareWave(half_period=0.25)
    print("Racing schedulers on the TX2 under DVFS (matmul DAG, P=4):")
    for scheduler in ("rws", GreedyFastScheduler(), "dam-c"):
        name = scheduler if isinstance(scheduler, str) else scheduler.name
        result = quick_run(
            scheduler=scheduler if isinstance(scheduler, str) else scheduler,
            kernel="matmul",
            parallelism=4,
            total_tasks=2000,
            machine=jetson_tx2(),
            scenario=DvfsInterference(wave=wave),
        )
        print(f"  {str(name).upper():10s} throughput = "
              f"{result.throughput:7.0f} tasks/s")
    print()
    print("GreedyFast loses even to RWS: chasing the single fastest place")
    print("for every task serializes the whole DAG on it (and disabling")
    print("stealing removes the load balancing RWS relies on).  DAM-C wins")
    print("by reserving the global search for the small critical fraction")
    print("and keeping low-priority tasks local and stealable.")


if __name__ == "__main__":
    main()
